"""Logic-channel model: banks plus a shared data bus.

A *logic channel* in the paper is a ganged pair of physical channels with a
16 B transfer width (12.8 GB/s at 800 MT/s); scheduling happens per logic
channel.  The channel owns its banks' state machines and a data-bus
occupancy cursor, and computes the full timing of one line transaction:

* closed bank:         ACT at bank-ready, CAS after tRCD
* open-row hit:        CAS at bank-ready
* open-row conflict:   PRE (tRP), then ACT, then CAS (open-page ablation)
* data burst:          starts at max(CAS + CL, bus free), lasts tBurst
* page policy tail:    +tWR for writes, +tRP when auto-precharging

The command bus is not separately modelled (on DDR2 it is not the
bottleneck for 64 B-granule traffic); the data bus and bank timing are.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.config import DramTimingConfig
from repro.dram.bank import Bank

__all__ = ["TransactionTiming", "Channel"]


@dataclass(slots=True)
class TransactionTiming:
    """Resolved timing of one line transaction on a channel.

    Constructed once per committed transaction — a plain slotted
    dataclass (not frozen: frozen init goes through ``object.__setattr__``
    per field, which showed up in the kernel profile).  Treat instances
    as immutable all the same.
    """

    #: cycle the column command issues
    cas_cycle: int
    #: first cycle of the data burst
    data_start: int
    #: cycle the data burst completes (read data available to controller)
    data_end: int
    #: whether the access hit the open row
    row_hit: bool
    #: cycle the bank could first start work (before any conflict
    #: precharge) — ``cas_cycle - start_cycle`` is the row-preparation
    #: cost the span-attribution layer charges to this transaction
    start_cycle: int = 0
    #: whether a different row was open and had to be precharged first
    conflict: bool = False


class Channel:
    """One logic channel: a bank array and a serialised data bus."""

    __slots__ = (
        "index",
        "timing",
        "banks",
        "bus_free_cycle",
        "busy_until",
        "transactions",
        "writes",
        "data_cycles",
        "_act_times",
        "_t_rp",
        "_t_rcd",
        "_t_cl",
        "_t_burst",
        "_t_rrd",
        "_t_faw",
        "_act_tracking",
    )

    def __init__(self, index: int, num_banks: int, timing: DramTimingConfig) -> None:
        if num_banks < 1:
            raise ValueError("channel needs at least one bank")
        self.index = index
        self.timing = timing
        # DDR2 timing table flattened once at construction: execute() is
        # the per-transaction hot path and must not chase attributes of
        # the (non-slotted, frozen) config dataclass.
        self._t_rp = timing.t_rp
        self._t_rcd = timing.t_rcd
        self._t_cl = timing.t_cl
        self._t_burst = timing.t_burst
        self._t_rrd = timing.t_rrd
        self._t_faw = timing.t_faw
        #: whether activate-rate constraints are enabled at all (decided
        #: at config time, not re-tested per transaction)
        self._act_tracking = bool(timing.t_rrd or timing.t_faw)
        self.banks = [Bank(i, timing) for i in range(num_banks)]
        #: next cycle the data bus is free
        self.bus_free_cycle: int = 0
        #: next cycle the channel scheduler may issue another transaction
        #: (we pace issue at one transaction per burst slot)
        self.busy_until: int = 0
        self.transactions: int = 0
        #: write transactions committed (reads = transactions - writes)
        self.writes: int = 0
        #: cumulative cycles the data bus spent bursting — epoch deltas of
        #: this against wall cycles are the bus-utilisation time series
        self.data_cycles: int = 0
        #: recent ACT issue cycles for tRRD / tFAW enforcement (kept only
        #: when those constraints are enabled)
        self._act_times: deque[int] = deque(maxlen=4)

    # -- queries -------------------------------------------------------------

    def is_row_hit(self, bank: int, row: int) -> bool:
        """Would a request to (bank, row) hit the open row right now?"""
        return self.banks[bank].is_open(row)

    def earliest_issue(self, now: int) -> int:
        """Earliest cycle the scheduler may commit another transaction."""
        return max(now, self.busy_until)

    def reset(self) -> None:
        """Reset bus and all banks to the initial state."""
        self.bus_free_cycle = 0
        self.busy_until = 0
        self.transactions = 0
        self.writes = 0
        self.data_cycles = 0
        self._act_times.clear()
        for b in self.banks:
            b.reset()

    # -- scheduling ----------------------------------------------------------

    def execute(
        self,
        bank_idx: int,
        row: int,
        now: int,
        *,
        is_write: bool,
        keep_open: bool,
    ) -> TransactionTiming:
        """Commit one line transaction and return its resolved timing.

        The caller (memory controller) has already chosen *which* request to
        serve; this method only resolves *when* it completes, and advances
        the bank and bus state.
        """
        bank = self.banks[bank_idx]
        ready_cycle = bank.ready_cycle
        start = now if now > ready_cycle else ready_cycle
        ready = start
        hit = bank.open_row == row
        conflict = False
        if hit:
            cas = start
        else:
            if bank.open_row is not None:
                # Open-page conflict: precharge before the activate.
                start = start + self._t_rp
                bank.conflicts += 1
                conflict = True
            act = start
            # Optional activate-rate constraints (tRRD / tFAW).
            if self._act_tracking:
                act_times = self._act_times
                if self._t_rrd and act_times:
                    act = max(act, act_times[-1] + self._t_rrd)
                if self._t_faw and len(act_times) == 4:
                    act = max(act, act_times[0] + self._t_faw)
                act_times.append(act)
            cas = act + self._t_rcd
        bus_free = self.bus_free_cycle
        data_start = cas + self._t_cl
        if data_start < bus_free:
            data_start = bus_free
        data_end = data_start + self._t_burst
        self.bus_free_cycle = data_end
        # Pace the scheduler at one transaction per data-burst slot: bursts
        # can then run back-to-back on the bus while ACT/PRE of upcoming
        # transactions overlap in other banks (bank-level parallelism).
        self.busy_until = now + self._t_burst
        bank.commit(row, data_end, was_hit=hit, is_write=is_write, keep_open=keep_open)
        self.transactions += 1
        if is_write:
            self.writes += 1
        self.data_cycles += data_end - data_start
        return TransactionTiming(
            cas_cycle=cas,
            data_start=data_start,
            data_end=data_end,
            row_hit=hit,
            start_cycle=ready,
            conflict=conflict,
        )

    # -- statistics ----------------------------------------------------------

    @property
    def total_activations(self) -> int:
        return sum(b.activations for b in self.banks)

    @property
    def total_row_hits(self) -> int:
        return sum(b.row_hits for b in self.banks)

    @property
    def total_conflicts(self) -> int:
        """Row-buffer conflicts (precharge forced before activate)."""
        return sum(b.conflicts for b in self.banks)

    def bus_utilisation(self, now: int) -> float:
        """Lifetime data-bus busy fraction up to ``now``."""
        return min(self.data_cycles / now, 1.0) if now > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel({self.index}, banks={len(self.banks)}, "
            f"bus_free={self.bus_free_cycle})"
        )
