"""DRAM bank state machine.

A bank tracks the currently open row (if any) and the earliest cycle at
which a new command may start at it.  The timing arithmetic for a whole
transaction (activate / CAS / burst / precharge, plus data-bus
serialisation) lives in :class:`repro.dram.channel.Channel`; the bank only
answers "is this row open?", "when are you free?", and records the outcome
of a committed transaction.

Row-hit detection against this state is what the Hit-First component of
every scheduling policy in the paper consults.
"""

from __future__ import annotations

from repro.config import DramTimingConfig

__all__ = ["Bank"]


class Bank:
    """One DRAM bank.

    Attributes
    ----------
    open_row:
        Row currently latched in the row buffer, or ``None`` when precharged
        (precharge time is folded into ``ready_cycle``).
    ready_cycle:
        Earliest cycle a new command (ACT for a closed bank, CAS for the
        open row) may start at this bank.
    activations / row_hits / conflicts:
        Lifetime counters for statistics, ablations and telemetry
        (``conflicts`` counts accesses that found a *different* row open
        and had to precharge first — only possible under the open-page
        ablation or while a keep-open decision is pending).
    """

    __slots__ = (
        "index",
        "timing",
        "open_row",
        "ready_cycle",
        "activations",
        "row_hits",
        "conflicts",
        "_t_rp",
        "_t_wr",
    )

    def __init__(self, index: int, timing: DramTimingConfig) -> None:
        self.index = index
        self.timing = timing
        # Timing constants flattened out of the (non-slotted, frozen)
        # config dataclass once at construction — commit() runs per
        # transaction and must not chase config attributes.
        self._t_rp = timing.t_rp
        self._t_wr = timing.t_wr
        self.open_row: int | None = None
        self.ready_cycle: int = 0
        self.activations: int = 0
        self.row_hits: int = 0
        self.conflicts: int = 0

    def is_open(self, row: int) -> bool:
        """True iff ``row`` is latched in the row buffer."""
        return self.open_row == row

    def access_start(self, now: int) -> int:
        """Earliest cycle an access could start here."""
        return max(now, self.ready_cycle)

    def commit(
        self,
        row: int,
        data_end: int,
        *,
        was_hit: bool,
        is_write: bool,
        keep_open: bool,
    ) -> None:
        """Record a transaction whose data burst ends at ``data_end``.

        Parameters
        ----------
        was_hit:
            Whether the access reused the open row (stats only).
        keep_open:
            Page-policy decision by the controller: ``True`` leaves the row
            latched, ``False`` auto-precharges after the access.
        """
        if was_hit:
            self.row_hits += 1
        else:
            self.activations += 1
        recovery = self._t_wr if is_write else 0
        if keep_open:
            self.open_row = row
            self.ready_cycle = data_end + recovery
        else:
            self.open_row = None
            self.ready_cycle = data_end + recovery + self._t_rp

    def precharge(self, now: int) -> None:
        """Explicitly close the bank (open-page ablation uses this)."""
        if self.open_row is not None:
            self.open_row = None
            self.ready_cycle = max(now, self.ready_cycle) + self.timing.t_rp

    def reset(self) -> None:
        """Return to the powered-up, all-banks-precharged state."""
        self.open_row = None
        self.ready_cycle = 0
        self.activations = 0
        self.row_hits = 0
        self.conflicts = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bank({self.index}, open_row={self.open_row}, ready={self.ready_cycle})"
