"""Physical-address -> DRAM-coordinate mapping.

The paper uses *cache-line interleaving* (Section 4.1): consecutive cache
lines are spread first across logic channels, then across the banks of a
channel, so that streams achieve maximal bank-level parallelism and the
close-page policy is sensible.  The resulting bit layout, LSB first::

    | line offset | channel bits | bank bits | column(line-in-row) | row |

Rows are ``row_bytes`` per bank, so a row holds ``row_bytes / line_bytes``
lines; the 'column' coordinate here is the line index within the row.

The mapping is a bijection between line-aligned addresses and
``(channel, bank, row, col)`` tuples, which the property tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DramTopologyConfig

__all__ = ["DramCoord", "AddressMapper"]

#: decode memos shared across mapper instances, keyed by bit layout.
#: Sweeps build one system per (mix, policy) cell with an identical
#: geometry; sharing the line -> coordinate table means only the first
#: run of a sweep pays for decoding.  Safe because decode is a pure
#: function of the layout and DramCoord is immutable.
_SHARED_DECODE: dict[tuple, dict[int, "DramCoord"]] = {}


@dataclass(frozen=True, order=True)
class DramCoord:
    """Location of one cache line in the DRAM system."""

    channel: int
    bank: int
    row: int
    col: int


def _log2(x: int) -> int:
    if x <= 0 or x & (x - 1):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


class AddressMapper:
    """Cache-line-interleaved address decoder/encoder.

    Parameters
    ----------
    topology:
        DRAM organisation; bank counts and row size must be powers of two.
    line_bytes:
        Cache-line size (the interleave granule).
    """

    __slots__ = (
        "line_bytes",
        "_off_bits",
        "_ch_bits",
        "_bank_bits",
        "_col_bits",
        "channels",
        "banks_per_channel",
        "lines_per_row",
        "_decode_cache",
    )

    def __init__(self, topology: DramTopologyConfig, line_bytes: int = 64) -> None:
        topology.validate()
        self.line_bytes = line_bytes
        self.channels = topology.logic_channels
        self.banks_per_channel = topology.banks_per_channel
        self.lines_per_row = topology.row_bytes // line_bytes
        if self.lines_per_row < 1:
            raise ValueError("row smaller than a cache line")
        self._off_bits = _log2(line_bytes)
        self._ch_bits = _log2(self.channels)
        self._bank_bits = _log2(self.banks_per_channel)
        self._col_bits = _log2(self.lines_per_row)
        # Memoised line -> coordinate table.  The bit layout is fixed at
        # construction, workloads re-reference the same lines heavily
        # (hot sets, streams, writebacks of resident lines), and
        # DramCoord is a frozen dataclass whose __init__ dominates the
        # decode cost — so decoding each distinct line once and sharing
        # the immutable coordinate is a large hot-path win.  The table is
        # shared process-wide between mappers with the same layout (see
        # _SHARED_DECODE), so repeated runs of a sweep start warm.
        layout = (line_bytes, self.channels, self.banks_per_channel, self.lines_per_row)
        self._decode_cache = _SHARED_DECODE.setdefault(layout, {})

    def decode(self, addr: int) -> DramCoord:
        """Map a byte address to its DRAM coordinate.

        Sub-line bits are ignored (the memory system moves whole lines).
        """
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        line = addr >> self._off_bits
        coord = self._decode_cache.get(line)
        if coord is None:
            channel = line & (self.channels - 1)
            rest = line >> self._ch_bits
            bank = rest & (self.banks_per_channel - 1)
            rest >>= self._bank_bits
            col = rest & (self.lines_per_row - 1)
            row = rest >> self._col_bits
            coord = DramCoord(channel=channel, bank=bank, row=row, col=col)
            self._decode_cache[line] = coord
        return coord

    def encode(self, coord: DramCoord) -> int:
        """Inverse of :meth:`decode` (line-aligned address)."""
        if not 0 <= coord.channel < self.channels:
            raise ValueError(f"channel {coord.channel} out of range")
        if not 0 <= coord.bank < self.banks_per_channel:
            raise ValueError(f"bank {coord.bank} out of range")
        if not 0 <= coord.col < self.lines_per_row:
            raise ValueError(f"col {coord.col} out of range")
        if coord.row < 0:
            raise ValueError(f"negative row {coord.row}")
        line = coord.row
        line = (line << self._col_bits) | coord.col
        line = (line << self._bank_bits) | coord.bank
        line = (line << self._ch_bits) | coord.channel
        return line << self._off_bits

    def line_address(self, addr: int) -> int:
        """The line-aligned address containing ``addr``."""
        return addr & ~(self.line_bytes - 1)

    def channel_of(self, addr: int) -> int:
        """Fast path: just the logic channel of ``addr``."""
        return (addr >> self._off_bits) & (self.channels - 1)
