"""DRAM command records and an optional command logger.

The simulator schedules at transaction granularity, but each committed
transaction implies a concrete DDR2 command sequence (PRE / ACT / RD / WR,
with auto-precharge folded into the column command for the close-page
policy).  :class:`CommandLog` reconstructs that sequence from the resolved
transaction timing so tests and analyses can verify command-level
behaviour (ordering, bank occupancy, row open/close discipline) without
the simulator paying per-command event costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.config import DramTimingConfig
from repro.dram.channel import TransactionTiming

__all__ = ["CommandKind", "DramCommand", "CommandLog"]


class CommandKind(Enum):
    """DDR2 command types the model distinguishes."""

    PRECHARGE = "PRE"
    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    READ_AP = "RDA"  # read with auto-precharge
    WRITE_AP = "WRA"  # write with auto-precharge


@dataclass(frozen=True, order=True)
class DramCommand:
    """One command issued to one bank."""

    cycle: int
    channel: int
    bank: int
    kind: CommandKind
    row: int


class CommandLog:
    """Reconstructs and stores the command stream of committed transactions.

    Attach one to a live simulation with :meth:`attach` (it becomes the
    :class:`~repro.dram.dram_system.DramSystem` observer) or call
    :meth:`record` directly on saved timings.

    With a :class:`~repro.telemetry.hub.Telemetry` hub supplied to
    :meth:`attach`, every reconstructed command is also published on the
    hub's event bus (one ``"cmd"`` instant per DDR2 command, on its
    channel's track) — the same sink the decision log and drain windows
    use, so a Chrome trace shows the full command stream in context.
    """

    __slots__ = ("timing", "commands", "_bus")

    def __init__(self, timing: DramTimingConfig) -> None:
        self.timing = timing
        self.commands: list[DramCommand] = []
        self._bus = None

    def attach(self, dram, telemetry=None) -> "CommandLog":
        """Register as ``dram``'s transaction observer; returns self."""
        self._bus = telemetry.bus if telemetry is not None else None

        def observer(coord, t, is_write, keep_open, had_conflict):
            self.record(
                coord.channel, coord.bank, coord.row, t,
                is_write=is_write, keep_open=keep_open, had_conflict=had_conflict,
            )

        dram.observer = observer
        return self

    def record(
        self,
        channel: int,
        bank: int,
        row: int,
        t: TransactionTiming,
        *,
        is_write: bool,
        keep_open: bool,
        had_conflict: bool = False,
    ) -> None:
        """Expand one transaction into its implied command sequence."""
        cfg = self.timing
        if not t.row_hit:
            if had_conflict:
                pre_cycle = t.cas_cycle - cfg.t_rcd - cfg.t_rp
                self._add(
                    DramCommand(pre_cycle, channel, bank, CommandKind.PRECHARGE, row)
                )
            act_cycle = t.cas_cycle - cfg.t_rcd
            self._add(
                DramCommand(act_cycle, channel, bank, CommandKind.ACTIVATE, row)
            )
        if is_write:
            kind = CommandKind.WRITE if keep_open else CommandKind.WRITE_AP
        else:
            kind = CommandKind.READ if keep_open else CommandKind.READ_AP
        self._add(DramCommand(t.cas_cycle, channel, bank, kind, row))

    def _add(self, cmd: DramCommand) -> None:
        self.commands.append(cmd)
        if self._bus is not None:
            self._bus.emit(
                "cmd",
                "instant",
                cmd.cycle,
                f"ch{cmd.channel}",
                op=cmd.kind.value,
                bank=cmd.bank,
                row=cmd.row,
            )

    # -- queries -----------------------------------------------------------

    def per_bank(self, channel: int, bank: int) -> list[DramCommand]:
        """Command stream of one bank, in issue order."""
        return sorted(
            c for c in self.commands if c.channel == channel and c.bank == bank
        )

    def count(self, kind: CommandKind) -> int:
        return sum(1 for c in self.commands if c.kind == kind)

    def verify_bank_discipline(self) -> None:
        """Assert the open/close discipline per bank.

        A column command must follow an ACT of the same row unless the
        previous column command to that bank kept the row open; raises
        ``AssertionError`` on violations.
        """
        banks: dict[tuple[int, int], list[DramCommand]] = {}
        for c in sorted(self.commands):
            banks.setdefault((c.channel, c.bank), []).append(c)
        for seq in banks.values():
            open_row: int | None = None
            for c in seq:
                if c.kind == CommandKind.ACTIVATE:
                    assert open_row is None, f"ACT to open bank at {c}"
                    open_row = c.row
                elif c.kind == CommandKind.PRECHARGE:
                    open_row = None
                elif c.kind in (CommandKind.READ, CommandKind.WRITE):
                    assert open_row == c.row, f"column command to wrong row: {c}"
                else:  # auto-precharge variants
                    assert open_row == c.row, f"column command to wrong row: {c}"
                    open_row = None

    def clear(self) -> None:
        self.commands.clear()
