"""Trace persistence: record, save and load instruction traces.

Trace-driven simulators live on trace files; this module provides a
compact binary format so expensive synthetic (or externally converted)
traces can be generated once and replayed many times:

* header: magic ``REPROTR1``, little-endian ``uint64`` op count;
* body: per op, three little-endian ``uint64`` words — gap, address,
  flags (bit 0 = store).

NumPy handles the (de)serialisation in bulk, so loading a million-op trace
costs milliseconds, per the HPC guidance of batch I/O over per-record
loops.
"""

from __future__ import annotations

import io
import os
from typing import BinaryIO

import numpy as np

from repro.cpu.trace import ListTrace, MemOp, TraceSource

__all__ = ["TraceRecorder", "save_trace", "load_trace", "record_trace"]

_MAGIC = b"REPROTR1"


class TraceRecorder:
    """Wrap a trace source, remembering every op that flows through.

    Drop-in :class:`TraceSource`: hand it to a core in place of the
    original source, then :meth:`save` what was actually consumed.
    """

    __slots__ = ("source", "ops")

    def __init__(self, source: TraceSource) -> None:
        self.source = source
        self.ops: list[MemOp] = []

    def next_op(self) -> MemOp | None:
        op = self.source.next_op()
        if op is not None:
            self.ops.append(op)
        return op

    def save(self, path: str | os.PathLike) -> int:
        """Write the recorded ops to ``path``; returns the op count."""
        save_trace(self.ops, path)
        return len(self.ops)


def _encode(ops: list[MemOp]) -> bytes:
    arr = np.empty((len(ops), 3), dtype="<u8")
    for i, op in enumerate(ops):
        arr[i, 0] = op.gap
        arr[i, 1] = op.addr
        arr[i, 2] = 1 if op.is_write else 0
    buf = io.BytesIO()
    buf.write(_MAGIC)
    buf.write(np.uint64(len(ops)).tobytes())
    buf.write(arr.tobytes())
    return buf.getvalue()


def save_trace(ops: list[MemOp], path: str | os.PathLike) -> None:
    """Serialise ``ops`` to ``path`` in the REPROTR1 format."""
    with open(path, "wb") as f:
        f.write(_encode(ops))


def _read_exactly(f: BinaryIO, n: int) -> bytes:
    data = f.read(n)
    if len(data) != n:
        raise ValueError("truncated trace file")
    return data


def load_trace(path: str | os.PathLike) -> ListTrace:
    """Load a REPROTR1 trace file into a replayable :class:`ListTrace`."""
    with open(path, "rb") as f:
        if _read_exactly(f, len(_MAGIC)) != _MAGIC:
            raise ValueError(f"{path}: not a REPROTR1 trace file")
        count = int(np.frombuffer(_read_exactly(f, 8), dtype="<u8")[0])
        body = _read_exactly(f, count * 3 * 8)
    arr = np.frombuffer(body, dtype="<u8").reshape(count, 3)
    ops = [
        MemOp(gap=int(g), addr=int(a), is_write=bool(w))
        for g, a, w in arr
    ]
    return ListTrace(ops)


def record_trace(source: TraceSource, num_ops: int) -> list[MemOp]:
    """Pull up to ``num_ops`` operations from ``source`` into a list."""
    if num_ops < 0:
        raise ValueError("num_ops must be >= 0")
    ops: list[MemOp] = []
    for _ in range(num_ops):
        op = source.next_op()
        if op is None:
            break
        ops.append(op)
    return ops
