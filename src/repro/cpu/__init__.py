"""Processor-core substrate.

:class:`~repro.cpu.trace.MemOp` / trace sources describe a program as a
stream of memory references separated by gaps of non-memory instructions;
:class:`~repro.cpu.core_model.TraceCore` executes such a stream on an
interval-style out-of-order core model (issue width, ROB window, blocking
commit at the ROB head, MSHR-limited memory-level parallelism) — the
substitution for the paper's M5 cores documented in DESIGN.md §2.
"""

from repro.cpu.core_model import CoreStats, TraceCore
from repro.cpu.trace import ListTrace, MemOp, TraceSource

__all__ = ["CoreStats", "ListTrace", "MemOp", "TraceCore", "TraceSource"]
