"""Program traces: memory references separated by instruction gaps.

A trace reduces a program to the stream the memory system sees, the way
trace-driven simulators have always done: each :class:`MemOp` is one memory
instruction, preceded by ``gap`` ordinary (non-memory) instructions that
the core retires at full issue rate.  Traces are pulled lazily — the
synthetic workload generators in :mod:`repro.workloads` are infinite, and
the core model consumes exactly as much as its instruction budget needs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

__all__ = ["MemOp", "TraceSource", "ListTrace"]


class MemOp:
    """One memory instruction in program order.

    Attributes
    ----------
    gap:
        Number of non-memory instructions preceding this one (>= 0).
    addr:
        Byte address referenced.
    is_write:
        Store (``True``) or load (``False``).
    """

    __slots__ = ("gap", "addr", "is_write")

    def __init__(self, gap: int, addr: int, is_write: bool = False) -> None:
        if gap < 0:
            raise ValueError(f"negative gap {gap}")
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")
        self.gap = gap
        self.addr = addr
        self.is_write = is_write

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "st" if self.is_write else "ld"
        return f"MemOp(gap={self.gap}, {kind} {self.addr:#x})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemOp):
            return NotImplemented
        return (
            self.gap == other.gap
            and self.addr == other.addr
            and self.is_write == other.is_write
        )

    def __hash__(self) -> int:
        return hash((self.gap, self.addr, self.is_write))


@runtime_checkable
class TraceSource(Protocol):
    """Anything that yields memory operations in program order."""

    def next_op(self) -> Optional[MemOp]:
        """The next memory operation, or ``None`` when the trace ends."""
        ...


class ListTrace:
    """A finite, in-memory trace (mainly for tests and examples)."""

    __slots__ = ("_ops", "_pos")

    def __init__(self, ops: Iterable[MemOp]) -> None:
        self._ops = list(ops)
        self._pos = 0

    def next_op(self) -> Optional[MemOp]:
        if self._pos >= len(self._ops):
            return None
        op = self._ops[self._pos]
        self._pos += 1
        return op

    def rewind(self) -> None:
        """Restart the trace from the beginning."""
        self._pos = 0

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def total_instructions(self) -> int:
        """Instructions the full trace represents (gaps + memory ops)."""
        return sum(op.gap + 1 for op in self._ops)
