"""Interval-style trace-driven out-of-order core model.

This is the substitution for the paper's M5 cores (DESIGN.md §2).  It keeps
the first-order mechanisms a memory-scheduling study depends on and nothing
else:

* the core fetches/retires ``issue_width`` instructions per cycle when
  nothing stalls it;
* the reorder buffer is a sliding instruction window of ``rob_size``:
  fetch may run at most that far ahead of commit;
* loads enter the window and block commit at the window head until their
  data is ready (L1/L2 hit latency, or a DRAM round trip);
* stores retire without waiting (write-buffer semantics) but still fetch
  their line (write-allocate) and consume MSHRs;
* a full MSHR file or a full controller buffer stalls fetch — that is what
  bounds each core's memory-level parallelism.

Time accounting uses *slot units*: one slot = one instruction issue
opportunity, ``issue_width`` slots per cycle.  Fetch and commit each own a
monotone slot cursor; converting ``slots // issue_width`` yields cycles.
Between memory events the model advances analytically over whole gaps of
non-memory instructions instead of iterating per cycle — the optimisation
that makes a pure-Python reproduction feasible (see the HPC guide's advice
to replace per-step loops with batch arithmetic).

Fidelity approximations (intentional, documented):

* When fetch resumes after a ROB-full or structural stall, its cursor is
  clamped forward to the wake point (the front end loses the cycles it
  was stalled, slightly conservative).
* Each core may run up to ``lookahead`` cycles past the globally committed
  simulation time; requests it emits are future-dated and the controller
  refuses to schedule them early (see ``MemoryController._candidates``),
  so causality holds, while the bound keeps cross-core L2 interleaving
  honest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cache.hierarchy import BLOCKED, MERGED, PENDING, CacheHierarchy
from repro.config import CoreConfig
from repro.cpu.trace import MemOp, TraceSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EventEngine

__all__ = ["CoreStats", "TraceCore"]

#: ready_cycle sentinel for loads still waiting on DRAM
_NOT_READY = 1 << 62


@dataclass
class CoreStats:
    """Per-core execution counters."""

    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    mem_requests: int = 0
    structural_stalls: int = 0

    @property
    def mem_ops(self) -> int:
        return self.loads + self.stores


class TraceCore:
    """One simulated core executing a :class:`TraceSource`.

    Parameters
    ----------
    core_id / config / trace / hierarchy / engine:
        Identity, core parameters (Table 1), instruction stream, memory
        path and event engine.
    target_insts:
        Instruction budget: :attr:`finish_cycle` freezes when the
        ``warmup_insts + target_insts``-th instruction commits.  The core
        keeps executing (the paper reloads finished applications so
        contention persists) until externally stopped.
    warmup_insts:
        Instructions committed before measurement starts; the caches and
        queues warm during this window (the SimPoint warmup analogue).
        :attr:`warmup_cycle` freezes at the crossing.
    lookahead:
        Bound, in cycles, on how far this core may run past the global
        simulation time within one activation.
    """

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace: TraceSource,
        hierarchy: CacheHierarchy,
        engine: "EventEngine",
        target_insts: int,
        warmup_insts: int = 0,
        lookahead: int = 256,
    ) -> None:
        config.validate()
        if target_insts < 1:
            raise ValueError("target_insts must be >= 1")
        if warmup_insts < 0:
            raise ValueError("warmup_insts must be >= 0")
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.core_id = core_id
        self.config = config
        self.trace = trace
        self.hierarchy = hierarchy
        self.engine = engine
        self.target_insts = target_insts
        self.warmup_insts = warmup_insts
        self.lookahead = lookahead
        self.stats = CoreStats()

        q = config.issue_width
        self._Q = q
        # Slot-unit cursors: fetch_q/commit_q point at the next free slot.
        self.fetch_q = 0
        self.commit_q = 0
        self.fetched = 0
        self.committed = 0
        #: cumulative commit slots lost waiting on head loads — epoch
        #: deltas of this / (issue_width * cycles) are the telemetry
        #: sampler's ROB-stall-fraction series
        self.stall_q = 0
        #: loads in the instruction window: [inst_no, ready_cycle]
        self._rob: deque[list[int]] = deque()
        #: next memory op waiting to be fetched, and its instruction index
        self._cur_op: MemOp | None = None
        self._cur_op_inst = 0
        self._trace_done = False
        self._blocked = False
        self._stopped = False
        self._fetch_was_full = False
        #: cycle the warmup budget committed (0 when warmup_insts == 0)
        self.warmup_cycle: int | None = 0 if warmup_insts == 0 else None
        #: cycle the measurement budget committed, or None
        self.finish_cycle: int | None = None
        #: optional hooks fired once at each crossing: fn(core)
        self.on_warmup = None
        self.on_finish = None
        #: span collector for structural-stall stamps (wired by
        #: MultiCoreSystem when the telemetry hub captures spans)
        self.spans = None
        self._pull_next_op()

    # -- public control --------------------------------------------------------

    def start(self) -> None:
        """Arm the core's first activation at cycle 0."""
        self.engine.schedule(0, self._wake)

    def stop(self) -> None:
        """Freeze the core (end of simulation)."""
        self._stopped = True

    @property
    def finished(self) -> bool:
        """Whether the instruction budget has committed."""
        return self.finish_cycle is not None

    @property
    def rob_occupancy(self) -> int:
        """Instructions currently in flight between fetch and commit."""
        return self.fetched - self.committed

    def ipc(self) -> float:
        """Committed IPC over the measurement window (0 while running)."""
        if self.finish_cycle is None or self.warmup_cycle is None:
            return 0.0
        window = self.finish_cycle - self.warmup_cycle
        if window <= 0:
            return 0.0
        return self.target_insts / window

    # -- trace feed --------------------------------------------------------------

    def _pull_next_op(self) -> None:
        op = self.trace.next_op()
        if op is None:
            self._trace_done = True
            self._cur_op = None
        else:
            self._cur_op = op
            self._cur_op_inst = self.fetched + op.gap

    # -- engine callbacks ----------------------------------------------------------

    def _wake(self, now: int) -> None:
        if not self._stopped:
            self._run(now)

    def _on_unblock(self, now: int) -> None:
        if self._stopped or not self._blocked:
            return  # stale wake (another resource freed us already)
        self._blocked = False
        # The front end lost the stalled cycles; resume from the wake point.
        if self.fetch_q < now * self._Q:
            self.fetch_q = now * self._Q
        self._run(now)

    def _on_load_ready(self, entry: list[int], now: int) -> None:
        entry[1] = now
        if not self._stopped:
            self._run(now)

    # -- the simulation loop ---------------------------------------------------------

    def _run(self, now: int) -> None:
        """Advance fetch and commit as far as currently deterministic,
        bounded by ``now + lookahead`` for fetch."""
        limit_q = (now + self.lookahead) * self._Q
        while True:
            self._advance_commit()
            if self._blocked or self._stopped:
                return
            # If fetch had filled the window, it resumed only because
            # commit freed slots — so its clock cannot be behind commit's
            # (the documented resume-clamp; without it the front end would
            # fetch 'in the past' after long memory stalls).
            if (
                self._fetch_was_full
                and self.fetched - self.committed < self.config.rob_size
            ):
                self._fetch_was_full = False
                if self.fetch_q < self.commit_q:
                    self.fetch_q = self.commit_q
            progressed = self._advance_fetch(limit_q)
            self._advance_commit()
            if not progressed:
                break
        self._arm_wake(now, limit_q)

    # .. commit ..

    def _advance_commit(self) -> None:
        """Retire instructions up to the first not-ready load (no time cap:
        commit timing is deterministic once ready times are known)."""
        Q = self._Q
        rob = self._rob
        while True:
            barrier = rob[0] if rob else None
            boundary = barrier[0] if barrier is not None else self.fetched
            free = boundary - self.committed
            if free > 0:
                # Plain instructions retire at Q per cycle.
                self.committed += free
                self.commit_q += free
                self._check_finish()
                continue
            if barrier is None or barrier[0] >= self.fetched:
                return  # nothing more fetched
            ready = barrier[1]
            if ready >= _NOT_READY:
                return  # head load still waiting on memory
            # The load itself retires, no earlier than its data-ready cycle.
            min_q = ready * Q
            if self.commit_q < min_q:
                self.stall_q += min_q - self.commit_q
                self.commit_q = min_q
            self.commit_q += 1
            self.committed += 1
            rob.popleft()
            self._check_finish()

    def _crossing_cycle(self, threshold: int) -> int:
        """Cycle the ``threshold``-th instruction committed (within the
        batch that just completed): slot interpolation from commit_q."""
        slot = self.commit_q - 1 - (self.committed - threshold)
        return slot // self._Q + 1

    def _check_finish(self) -> None:
        if self.warmup_cycle is None and self.committed >= self.warmup_insts:
            self.warmup_cycle = self._crossing_cycle(self.warmup_insts)
            if self.on_warmup is not None:
                self.on_warmup(self)
        total = self.warmup_insts + self.target_insts
        if self.finish_cycle is None and self.committed >= total:
            self.finish_cycle = self._crossing_cycle(total)
            if self.on_finish is not None:
                self.on_finish(self)

    # .. fetch ..

    def _advance_fetch(self, limit_q: int) -> bool:
        """Fetch up to ``limit_q``; returns whether any progress was made."""
        Q = self._Q
        progressed = False
        while self.fetch_q < limit_q:
            space = self.config.rob_size - (self.fetched - self.committed)
            if space <= 0:
                self._fetch_was_full = True
                return progressed  # window full: wait for commit
            if self._cur_op is None:
                if self._trace_done:
                    # Tail: plain instructions so a finite trace can still
                    # reach its budget (tests); stop at the budget.
                    remaining = self.warmup_insts + self.target_insts - self.fetched
                    if remaining <= 0:
                        return progressed
                    take = min(remaining, space, limit_q - self.fetch_q)
                    if take <= 0:
                        return progressed
                    self.fetched += take
                    self.fetch_q += take
                    progressed = True
                    continue
                self._pull_next_op()
                continue
            plain = self._cur_op_inst - self.fetched
            if plain > 0:
                take = min(plain, space, limit_q - self.fetch_q)
                if take <= 0:
                    return progressed
                self.fetched += take
                self.fetch_q += take
                progressed = True
                continue
            # The memory instruction itself is due this slot.
            if not self._fetch_mem_op():
                return progressed
            progressed = True
        return progressed

    def _fetch_mem_op(self) -> bool:
        """Issue the pending memory op; returns False on a structural stall."""
        op = self._cur_op
        assert op is not None
        cycle = self.fetch_q // self._Q
        waiter_entry: list[int] | None = None
        if not op.is_write:
            waiter_entry = [self.fetched, _NOT_READY]

        entry = waiter_entry

        def on_data(_line: int, done: int, e=entry) -> None:
            if e is not None:
                self._on_load_ready(e, done)

        result = self.hierarchy.access(
            self.core_id,
            op.addr,
            op.is_write,
            cycle,
            on_data if entry is not None else self._store_data_cb,
        )
        if result == BLOCKED:
            self.stats.structural_stalls += 1
            if self.spans is not None:
                # Stamp the first attempt so the eventual request's span
                # can attribute the structural-stall wait.
                self.spans.note_blocked(
                    self.core_id, cycle, self.hierarchy.line_of(op.addr)
                )
            self._blocked = True
            self.hierarchy.wait_unblock(self._on_unblock)
            return False
        if op.is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
            assert entry is not None
            if result == PENDING:
                self.stats.mem_requests += 1
            elif result == MERGED:
                pass  # waits on the in-flight line, no new request
            else:
                entry[1] = cycle + result
                if result == self.hierarchy.config.caches.l1d.hit_latency:
                    self.stats.l1_hits += 1
                else:
                    self.stats.l2_hits += 1
            self._rob.append(entry)
        self.fetched += 1
        self.fetch_q += 1
        self._pull_next_op()
        return True

    def _store_data_cb(self, _line: int, now: int) -> None:
        """Store-miss data arrived: nothing blocks on it, but re-run in case
        the MSHR slot it frees unblocks the front end indirectly."""
        if not self._stopped and not self._blocked:
            self._run(now)

    # .. wake management ..

    def _arm_wake(self, now: int, limit_q: int) -> None:
        """Schedule the next spontaneous activation, if one is needed.

        Blocked cores are woken by callbacks; cores stalled at the window
        head are woken by their load's data return; only a core that
        stopped purely because of the lookahead bound needs a timer.
        """
        if self._stopped or self._blocked:
            return
        if self._trace_done and self.fetched >= self.warmup_insts + self.target_insts:
            return  # drained
        # Stalled on window-full with a pending head load: response wakes us.
        space = self.config.rob_size - (self.fetched - self.committed)
        if space <= 0 and self._rob and self._rob[0][1] >= _NOT_READY:
            return
        if self.fetch_q >= limit_q:
            self.engine.schedule(limit_q // self._Q, self._wake)
            return
        # Window full but head load has a known ready time: wake then.
        if space <= 0 and self._rob:
            self.engine.schedule(max(self._rob[0][1], now + 1), self._wake)
            return
        # Otherwise fetch stopped for a reason that resolves via callbacks.
