"""Interval-style trace-driven out-of-order core model.

This is the substitution for the paper's M5 cores (DESIGN.md §2).  It keeps
the first-order mechanisms a memory-scheduling study depends on and nothing
else:

* the core fetches/retires ``issue_width`` instructions per cycle when
  nothing stalls it;
* the reorder buffer is a sliding instruction window of ``rob_size``:
  fetch may run at most that far ahead of commit;
* loads enter the window and block commit at the window head until their
  data is ready (L1/L2 hit latency, or a DRAM round trip);
* stores retire without waiting (write-buffer semantics) but still fetch
  their line (write-allocate) and consume MSHRs;
* a full MSHR file or a full controller buffer stalls fetch — that is what
  bounds each core's memory-level parallelism.

Time accounting uses *slot units*: one slot = one instruction issue
opportunity, ``issue_width`` slots per cycle.  Fetch and commit each own a
monotone slot cursor; converting ``slots // issue_width`` yields cycles.
Between memory events the model advances analytically over whole gaps of
non-memory instructions instead of iterating per cycle — the optimisation
that makes a pure-Python reproduction feasible (see the HPC guide's advice
to replace per-step loops with batch arithmetic).

Fidelity approximations (intentional, documented):

* When fetch resumes after a ROB-full or structural stall, its cursor is
  clamped forward to the wake point (the front end loses the cycles it
  was stalled, slightly conservative).
* Each core may run up to ``lookahead`` cycles past the globally committed
  simulation time; requests it emits are future-dated and the controller
  refuses to schedule them early (see ``MemoryController._candidates``),
  so causality holds, while the bound keeps cross-core L2 interleaving
  honest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cache.hierarchy import BLOCKED, MERGED, PENDING, CacheHierarchy
from repro.config import CoreConfig
from repro.cpu.trace import MemOp, TraceSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EventEngine

__all__ = ["CoreStats", "TraceCore"]

#: ready_cycle sentinel for loads still waiting on DRAM
_NOT_READY = 1 << 62


@dataclass
class CoreStats:
    """Per-core execution counters."""

    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    mem_requests: int = 0
    structural_stalls: int = 0

    @property
    def mem_ops(self) -> int:
        return self.loads + self.stores


class TraceCore:
    """One simulated core executing a :class:`TraceSource`.

    Parameters
    ----------
    core_id / config / trace / hierarchy / engine:
        Identity, core parameters (Table 1), instruction stream, memory
        path and event engine.
    target_insts:
        Instruction budget: :attr:`finish_cycle` freezes when the
        ``warmup_insts + target_insts``-th instruction commits.  The core
        keeps executing (the paper reloads finished applications so
        contention persists) until externally stopped.
    warmup_insts:
        Instructions committed before measurement starts; the caches and
        queues warm during this window (the SimPoint warmup analogue).
        :attr:`warmup_cycle` freezes at the crossing.
    lookahead:
        Bound, in cycles, on how far this core may run past the global
        simulation time within one activation.
    """

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        trace: TraceSource,
        hierarchy: CacheHierarchy,
        engine: "EventEngine",
        target_insts: int,
        warmup_insts: int = 0,
        lookahead: int = 256,
    ) -> None:
        config.validate()
        if target_insts < 1:
            raise ValueError("target_insts must be >= 1")
        if warmup_insts < 0:
            raise ValueError("warmup_insts must be >= 0")
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.core_id = core_id
        self.config = config
        self.trace = trace
        #: bound trace feed — _fetch_mem_op pulls one op per memory
        #: instruction and skips the method lookup chain
        self._next_op = trace.next_op
        self.hierarchy = hierarchy
        self.engine = engine
        self.target_insts = target_insts
        self.warmup_insts = warmup_insts
        self.lookahead = lookahead
        self.stats = CoreStats()

        q = config.issue_width
        self._Q = q
        # Hot-loop constants resolved once: the fetch/commit loops run per
        # instruction batch and must not walk config objects.
        self._rob_size = config.rob_size
        self._l1_hit_latency = hierarchy.config.caches.l1d.hit_latency
        # This core's L1 internals, bound once for the inlined hit path in
        # _fetch_mem_op.  The set list and geometry are stable for the
        # cache's lifetime (clear() empties the sets in place); the stats
        # object is re-read per access because clear() replaces it.
        l1 = hierarchy.l1d[core_id]
        self._l1 = l1
        self._l1_sets = l1._sets
        self._l1_off_bits = l1._off_bits
        self._l1_set_mask = l1._set_mask
        self._demand_accesses = hierarchy.demand_accesses
        # Stable memory-path internals, bound once for the blocked-retry
        # probe in _on_unblock (same lifetime argument as the L1 bindings
        # above; the L2 set list is cleared in place, never replaced, and
        # the MSHR/queue objects live as long as the system).
        l2 = hierarchy.l2
        self._line_mask = hierarchy._line_mask
        self._l2_sets = l2._sets
        self._l2_off_bits = l2._off_bits
        self._l2_set_mask = l2._set_mask
        mshr = hierarchy.mshrs[core_id]
        self._mshr_entries = mshr._entries
        self._mshr_cap = mshr.capacity
        self._l2_mshr_cap = hierarchy.l2_mshr_cap
        #: the controller's shared buffer, or None for split-controller
        #: groups (per-channel queues; the probe calls can_accept instead)
        self._ctrl_queues = getattr(hierarchy.controller, "queues", None)
        self._cq_cap = (
            self._ctrl_queues.capacity if self._ctrl_queues is not None else 0
        )
        # Bound-method callbacks created once: the retry/store paths pass
        # these thousands of times per run, and each plain attribute access
        # would build a fresh bound method.
        self._on_unblock_cb = self._on_unblock
        self._store_cb = self._store_data_cb
        # Slot-unit cursors: fetch_q/commit_q point at the next free slot.
        self.fetch_q = 0
        self.commit_q = 0
        self.fetched = 0
        self.committed = 0
        #: cumulative commit slots lost waiting on head loads — epoch
        #: deltas of this / (issue_width * cycles) are the telemetry
        #: sampler's ROB-stall-fraction series
        self.stall_q = 0
        #: loads in the instruction window: [inst_no, ready_cycle]
        self._rob: deque[list[int]] = deque()
        #: next memory op waiting to be fetched, and its instruction index
        self._cur_op: MemOp | None = None
        self._cur_op_inst = 0
        self._trace_done = False
        self._blocked = False
        self._stopped = False
        self._fetch_was_full = False
        #: cycle the warmup budget committed (0 when warmup_insts == 0)
        self.warmup_cycle: int | None = 0 if warmup_insts == 0 else None
        #: cycle the measurement budget committed, or None
        self.finish_cycle: int | None = None
        #: optional hooks fired once at each crossing: fn(core)
        self.on_warmup = None
        self.on_finish = None
        #: span collector for structural-stall stamps (wired by
        #: MultiCoreSystem when the telemetry hub captures spans)
        self.spans = None
        self._pull_next_op()
        # Replay fast path: when the trace is a recording (see
        # ReplayTrace.replay_state), the fetch loop indexes the op list
        # directly and only falls back to next_op() at the frontier.
        state = getattr(trace, "replay_state", None)
        if state is not None:
            self._replay_ops, self._trace_pos = state()
        else:
            self._replay_ops = None
            self._trace_pos = 0

    # -- public control --------------------------------------------------------

    def start(self) -> None:
        """Arm the core's first activation at cycle 0."""
        self.engine.schedule(0, self._wake)

    def stop(self) -> None:
        """Freeze the core (end of simulation)."""
        self._stopped = True

    @property
    def finished(self) -> bool:
        """Whether the instruction budget has committed."""
        return self.finish_cycle is not None

    @property
    def rob_occupancy(self) -> int:
        """Instructions currently in flight between fetch and commit."""
        return self.fetched - self.committed

    def ipc(self) -> float:
        """Committed IPC over the measurement window (0 while running)."""
        if self.finish_cycle is None or self.warmup_cycle is None:
            return 0.0
        window = self.finish_cycle - self.warmup_cycle
        if window <= 0:
            return 0.0
        return self.target_insts / window

    # -- trace feed --------------------------------------------------------------

    def _pull_next_op(self) -> None:
        op = self._next_op()
        if op is None:
            self._trace_done = True
            self._cur_op = None
        else:
            self._cur_op = op
            self._cur_op_inst = self.fetched + op.gap

    def _pull_fallback(self) -> MemOp | None:
        """Pull one op through the trace object (non-replay sources, and
        the generation frontier of a recording).  Keeps the replay cursor
        in ``self._trace_pos`` coherent with the trace's own."""
        if self._replay_ops is None:
            return self._next_op()
        op, self._trace_pos = self.trace.pull(self._trace_pos)
        return op

    # -- engine callbacks ----------------------------------------------------------

    def _wake(self, now: int) -> None:
        if not self._stopped:
            self._run(now)

    def _on_unblock(self, now: int) -> None:
        if self._stopped or not self._blocked:
            return  # stale wake (another resource freed us already)
        # The front end lost the stalled cycles; resume from the wake point.
        if self.fetch_q < now * self._Q:
            self.fetch_q = now * self._Q
        # Fast re-block test.  Resource-freed wakes fan out to every
        # blocked core, so most retries find the freed slot already taken
        # and block again immediately.  Probe the exact BLOCKED conditions
        # of CacheHierarchy.access_after_l1_miss (membership tests only —
        # a miss path mutates nothing); when the op would just block
        # again, charge the stats the failed attempt would have charged
        # and re-register, skipping the full run-loop scaffolding.  Safe
        # because commit state is already maximal at every event boundary
        # (commit has no time cap) and _fetch_was_full is never set while
        # blocked, so the skipped passes are provably no-ops.
        op = self._cur_op
        if op is not None:
            addr = op.addr
            tag = addr >> self._l1_off_bits
            if tag not in self._l1_sets[tag & self._l1_set_mask]:
                line = addr & self._line_mask
                t2 = line >> self._l2_off_bits
                if t2 not in self._l2_sets[t2 & self._l2_set_mask]:
                    h = self.hierarchy
                    entries = self._mshr_entries
                    cq = self._ctrl_queues
                    if line not in entries and (
                        len(entries) >= self._mshr_cap
                        or h._l2_outstanding >= self._l2_mshr_cap
                        or (
                            cq.occupancy >= self._cq_cap
                            if cq is not None
                            else not h.controller.can_accept()
                        )
                    ):
                        self._demand_accesses[self.core_id] += 1
                        self._l1.stats.misses += 1
                        h.l2.stats.misses += 1
                        self.stats.structural_stalls += 1
                        if self.spans is not None:
                            self.spans.note_blocked(
                                self.core_id, self.fetch_q // self._Q, line
                            )
                        # Inlined CacheHierarchy.wait_unblock (keep in
                        # sync) — one call saved per failed retry.
                        h._unblock_waiters.append(self._on_unblock_cb)
                        if not h._space_watch_armed:
                            h._space_watch_armed = True
                            h.controller.wait_for_space(h._on_space_freed)
                        return  # still blocked
        self._blocked = False
        self._run(now)

    def _on_load_ready(self, entry: list[int], now: int) -> None:
        entry[1] = now
        if not self._stopped:
            self._run(now)

    # -- the simulation loop ---------------------------------------------------------

    def _run(self, now: int) -> None:
        """Advance fetch and commit as far as currently deterministic,
        bounded by ``now + lookahead`` for fetch."""
        limit_q = (now + self.lookahead) * self._Q
        advance_commit = self._advance_commit
        while True:
            advance_commit()
            if self._blocked or self._stopped:
                return
            # If fetch had filled the window, it resumed only because
            # commit freed slots — so its clock cannot be behind commit's
            # (the documented resume-clamp; without it the front end would
            # fetch 'in the past' after long memory stalls).
            if (
                self._fetch_was_full
                and self.fetched - self.committed < self._rob_size
            ):
                self._fetch_was_full = False
                if self.fetch_q < self.commit_q:
                    self.fetch_q = self.commit_q
            if not self._advance_fetch(limit_q):
                # No new instructions entered the window since the commit
                # pass above, so a trailing commit pass would be a no-op.
                break
        self._arm_wake(now, limit_q)

    # .. commit ..

    def _advance_commit(self) -> None:
        """Retire instructions up to the first not-ready load (no time cap:
        commit timing is deterministic once ready times are known)."""
        Q = self._Q
        rob = self._rob
        committed = self.committed
        commit_q = self.commit_q
        fetched = self.fetched
        # _check_finish only matters until the measurement budget commits;
        # afterwards (the reload phase that keeps contention alive) the
        # crossing checks are dead weight.  While it does matter, it is a
        # no-op below the next threshold (warmup, then warmup+target), so
        # gate the call on crossing that threshold — down from one call
        # per retire batch to one per actual crossing.
        check = self.finish_cycle is None
        if check:
            total = self.warmup_insts + self.target_insts
            threshold = self.warmup_insts if self.warmup_cycle is None else total
        while True:
            barrier = rob[0] if rob else None
            boundary = barrier[0] if barrier is not None else fetched
            free = boundary - committed
            if free > 0:
                # Plain instructions retire at Q per cycle.
                committed += free
                commit_q += free
                if check and committed >= threshold:
                    self.committed = committed
                    self.commit_q = commit_q
                    self._check_finish()
                    check = self.finish_cycle is None
                    if check:
                        threshold = (
                            self.warmup_insts
                            if self.warmup_cycle is None
                            else total
                        )
                    fetched = self.fetched
                continue
            if barrier is None or barrier[0] >= fetched:
                break  # nothing more fetched
            ready = barrier[1]
            if ready >= _NOT_READY:
                break  # head load still waiting on memory
            # The load itself retires, no earlier than its data-ready cycle.
            min_q = ready * Q
            if commit_q < min_q:
                self.stall_q += min_q - commit_q
                commit_q = min_q
            commit_q += 1
            committed += 1
            rob.popleft()
            if check and committed >= threshold:
                self.committed = committed
                self.commit_q = commit_q
                self._check_finish()
                check = self.finish_cycle is None
                if check:
                    threshold = (
                        self.warmup_insts
                        if self.warmup_cycle is None
                        else total
                    )
                fetched = self.fetched
        self.committed = committed
        self.commit_q = commit_q

    def _crossing_cycle(self, threshold: int) -> int:
        """Cycle the ``threshold``-th instruction committed (within the
        batch that just completed): slot interpolation from commit_q."""
        slot = self.commit_q - 1 - (self.committed - threshold)
        return slot // self._Q + 1

    def _check_finish(self) -> None:
        if self.warmup_cycle is None and self.committed >= self.warmup_insts:
            self.warmup_cycle = self._crossing_cycle(self.warmup_insts)
            if self.on_warmup is not None:
                self.on_warmup(self)
        total = self.warmup_insts + self.target_insts
        if self.finish_cycle is None and self.committed >= total:
            self.finish_cycle = self._crossing_cycle(total)
            if self.on_finish is not None:
                self.on_finish(self)

    # .. fetch ..

    def _advance_fetch(self, limit_q: int) -> bool:
        """Fetch up to ``limit_q``; returns whether any progress was made.

        One fused loop covering gap batches *and* memory ops, with the hot
        cursors held in locals and written back once on exit.  That is safe
        because nothing re-enters this core synchronously mid-call: commit
        never runs inside fetch (``committed`` is constant here), the
        hierarchy reads no core state, and data/unblock waiters only fire
        later via engine events.  The L1 probe is the inlined body of
        SetAssocCache.lookup (keep in sync with cache.py), charged to the
        hierarchy's counters exactly as CacheHierarchy.access would; misses
        continue in access_after_l1_miss, and only they need a data waiter,
        so the per-load closure is built on that path alone.
        """
        Q = self._Q
        rob_size = self._rob_size
        rob = self._rob
        stats = self.stats
        l1 = self._l1
        l1_sets = self._l1_sets
        l1_off_bits = self._l1_off_bits
        l1_set_mask = self._l1_set_mask
        l1_hit_latency = self._l1_hit_latency
        demand = self._demand_accesses
        core_id = self.core_id
        # Counter cells hoisted to locals for the per-op loop and written
        # back once at exit (no callee reads them mid-call: the hierarchy
        # charges its own counters and nothing re-enters this core).  The
        # L1 stats object is re-read per call because clear() replaces it.
        l1_stats = l1.stats
        n_l1_hits = 0  # l1.stats.hits
        n_l1_miss = 0  # l1.stats.misses
        n_demand = 0  # demand_accesses[core_id]
        n_loads = 0
        n_stores = 0
        n_s_l1_hits = 0  # stats.l1_hits
        # L2 fast path hoists (the L2-hit continuation of
        # access_after_l1_miss is inlined below; keep in sync).
        h = self.hierarchy
        line_mask = self._line_mask
        l2_sets = self._l2_sets
        l2_off_bits = self._l2_off_bits
        l2_set_mask = self._l2_set_mask
        l2stats = h.l2.stats
        l2_hit_latency = h._l2_hit_latency
        l2_lat_is_l1 = l2_hit_latency == l1_hit_latency
        l1_assoc = l1._assoc
        prefetcher = h.prefetcher
        after_l2_miss = h._after_l2_miss
        n_l2_hits = 0  # l2.stats.hits
        n_l2_miss = 0  # l2.stats.misses
        n_l2_load_hits = 0  # stats.l2_hits
        r_ops = self._replay_ops
        r_pos = self._trace_pos
        # Recording length, hoisted: another consumer may extend the
        # recording, but only through next_op()/pull() — so the cached
        # length can only be stale-short, and the fallback path (which
        # serves from the recording too) refreshes it.  Op values are
        # identical either way.
        n_ops = len(r_ops) if r_ops is not None else 0
        committed = self.committed
        fetched = self.fetched
        fetch_q = self.fetch_q
        op = self._cur_op
        cur_inst = self._cur_op_inst
        progressed = False
        while fetch_q < limit_q:
            space = rob_size - (fetched - committed)
            if space <= 0:
                self._fetch_was_full = True
                break  # window full: wait for commit
            if op is None:
                if self._trace_done:
                    # Tail: plain instructions so a finite trace can still
                    # reach its budget (tests); stop at the budget.
                    remaining = self.warmup_insts + self.target_insts - fetched
                    if remaining <= 0:
                        break
                    take = min(remaining, space, limit_q - fetch_q)
                    if take <= 0:
                        break
                    fetched += take
                    fetch_q += take
                    progressed = True
                    continue
                if r_pos < n_ops:
                    op = r_ops[r_pos]
                    r_pos += 1
                    cur_inst = fetched + op.gap
                else:
                    self._trace_pos = r_pos
                    op = self._pull_fallback()
                    r_pos = self._trace_pos
                    if r_ops is not None:
                        n_ops = len(r_ops)
                    if op is None:
                        self._trace_done = True
                    else:
                        cur_inst = fetched + op.gap
                continue
            plain = cur_inst - fetched
            if plain > 0:
                # take = min(plain, space, limit_q - fetch_q), inlined.
                take = plain if plain < space else space
                room = limit_q - fetch_q
                if room < take:
                    take = room
                if take <= 0:
                    break
                fetched += take
                fetch_q += take
                progressed = True
                continue
            # The memory instruction itself is due this slot.
            cycle = fetch_q // Q
            is_write = op.is_write
            addr = op.addr
            n_demand += 1
            tag = addr >> l1_off_bits
            s = l1_sets[tag & l1_set_mask]
            if tag in s:
                # L1 hit — the overwhelmingly common outcome — handled
                # entirely here; move-to-back refreshes recency.
                s[tag] = s.pop(tag) or is_write
                n_l1_hits += 1
                if is_write:
                    n_stores += 1
                else:
                    # Ready loads never mutate their entry: a tuple is
                    # cheaper to build than a list and commits identically.
                    rob.append((fetched, cycle + l1_hit_latency))
                    n_s_l1_hits += 1
                    n_loads += 1
            else:
                n_l1_miss += 1
                line = addr & line_mask
                t2 = line >> l2_off_bits
                s2 = l2_sets[t2 & l2_set_mask]
                if t2 in s2:
                    # L2 hit — inlined hit path of access_after_l1_miss
                    # (keep in sync with hierarchy.py): refresh L2
                    # recency, install into L1 and retire the reference
                    # here, with no hierarchy call and no waiter.
                    s2[t2] = s2.pop(t2)
                    n_l2_hits += 1
                    if prefetcher is not None and line in h._prefetched_lines:
                        h._prefetched_lines.discard(line)
                        prefetcher.mark_useful()
                    t1 = line >> l1_off_bits
                    s1 = l1_sets[t1 & l1_set_mask]
                    if t1 in s1:
                        s1[t1] = s1.pop(t1) or is_write
                    else:
                        v_dirty = False
                        if len(s1) >= l1_assoc:
                            v_tag = next(iter(s1))  # front of dict == LRU
                            v_dirty = s1.pop(v_tag)
                            l1_stats.evictions += 1
                            if v_dirty:
                                l1_stats.dirty_evictions += 1
                        s1[t1] = is_write
                        l1_stats.fills += 1
                        if v_dirty:
                            v_addr = v_tag << l1_off_bits
                            if not h.l2.set_dirty(v_addr):
                                h._emit_writeback(core_id, v_addr, cycle)
                    if is_write:
                        n_stores += 1
                    else:
                        # Data is ready at a known cycle: a tuple entry
                        # commits identically and never mutates.
                        rob.append((fetched, cycle + l2_hit_latency))
                        if l2_lat_is_l1:
                            n_s_l1_hits += 1
                        else:
                            n_l2_load_hits += 1
                        n_loads += 1
                else:
                    n_l2_miss += 1
                    if is_write:
                        entry = None
                        waiter = self._store_cb
                    else:
                        entry = [fetched, _NOT_READY]
                        # (method, entry) pair instead of a per-miss
                        # closure; MSHR fire sites unpack it (see
                        # MshrFile.complete).
                        waiter = (self._on_load_ready, entry)
                    result = after_l2_miss(core_id, line, is_write, cycle, waiter)
                    if result == BLOCKED:
                        stats.structural_stalls += 1
                        if self.spans is not None:
                            # Stamp the first attempt so the eventual
                            # request's span can attribute the
                            # structural-stall wait.
                            self.spans.note_blocked(core_id, cycle, line)
                        self._blocked = True
                        # Inlined CacheHierarchy.wait_unblock (keep in
                        # sync).
                        h._unblock_waiters.append(self._on_unblock_cb)
                        if not h._space_watch_armed:
                            h._space_watch_armed = True
                            h.controller.wait_for_space(h._on_space_freed)
                        break  # op stays pending for the retry
                    elif is_write:
                        n_stores += 1
                    else:
                        # PENDING (new memory request) or MERGED (rides an
                        # in-flight line): either way the load waits.
                        n_loads += 1
                        if result == PENDING:
                            stats.mem_requests += 1
                        rob.append(entry)
            fetched += 1
            fetch_q += 1
            if r_pos < n_ops:
                op = r_ops[r_pos]
                r_pos += 1
                cur_inst = fetched + op.gap
            else:
                self._trace_pos = r_pos
                op = self._pull_fallback()
                r_pos = self._trace_pos
                if r_ops is not None:
                    n_ops = len(r_ops)
                if op is None:
                    self._trace_done = True
                else:
                    cur_inst = fetched + op.gap
            progressed = True
        self.fetched = fetched
        self.fetch_q = fetch_q
        self._trace_pos = r_pos
        self._cur_op = op
        self._cur_op_inst = cur_inst
        if n_demand:
            demand[core_id] += n_demand
            l1_stats.hits += n_l1_hits
            l1_stats.misses += n_l1_miss
            stats.loads += n_loads
            stats.stores += n_stores
            stats.l1_hits += n_s_l1_hits
            if n_l1_miss:
                l2stats.hits += n_l2_hits
                l2stats.misses += n_l2_miss
                stats.l2_hits += n_l2_load_hits
        return progressed

    def _store_data_cb(self, _line: int, now: int) -> None:
        """Store-miss data arrived: nothing blocks on it, but re-run in case
        the MSHR slot it frees unblocks the front end indirectly."""
        if not self._stopped and not self._blocked:
            self._run(now)

    # .. wake management ..

    def _arm_wake(self, now: int, limit_q: int) -> None:
        """Schedule the next spontaneous activation, if one is needed.

        Blocked cores are woken by callbacks; cores stalled at the window
        head are woken by their load's data return; only a core that
        stopped purely because of the lookahead bound needs a timer.
        """
        if self._stopped or self._blocked:
            return
        if self._trace_done and self.fetched >= self.warmup_insts + self.target_insts:
            return  # drained
        # Stalled on window-full with a pending head load: response wakes us.
        space = self._rob_size - (self.fetched - self.committed)
        if space <= 0 and self._rob and self._rob[0][1] >= _NOT_READY:
            return
        if self.fetch_q >= limit_q:
            self.engine.schedule(limit_q // self._Q, self._wake)
            return
        # Window full but head load has a known ready time: wake then.
        if space <= 0 and self._rob:
            self.engine.schedule(max(self._rob[0][1], now + 1), self._wake)
            return
        # Otherwise fetch stopped for a reason that resolves via callbacks.
