"""Sweep worker: execute cells for a coordinator, stream exact results.

A worker is a thin shell around :func:`repro.experiments.cells
.execute_cell` — the same pure ``Cell -> result`` function the local
process pool runs.  It connects to a coordinator, registers (the
handshake rejects a code-fingerprint mismatch, so a stale checkout can
never contribute results), then loops:

1. receive one ``task`` (the coordinator leases at most one cell per
   worker at a time);
2. consult the optional local :class:`~repro.service.store.ResultStore`
   (the same read-through the :class:`ExperimentContext` cache layer
   does, at cell granularity) — a warm entry skips the simulation;
3. otherwise simulate in a thread (``asyncio.to_thread``), so the
   heartbeat task keeps extending the worker's lease while the
   simulator grinds;
4. encode the result with the float-hex codec and send it back with its
   SHA-256.

Simulation faults are reported as ``task_failed`` (the coordinator
retries the cell, here or elsewhere, within its budget); a clean EOF
from the coordinator ends the worker.

Fault injection (tests only): ``REPRO_SERVICE_CORRUPT=<substring>``
makes the worker mis-report the SHA of the first attempt of any cell
whose key matches — exercising the coordinator's integrity check — and
the ``REPRO_PARALLEL_FAULT*`` hooks of :mod:`repro.experiments.cells`
work unchanged, since execution goes through ``execute_cell``.

Fleet observability (opt-in): after the ``welcome`` the worker adopts
the coordinator's ``run_id`` and exports it (with its own worker name
and the currently-executing ``cell_id``) through the ``REPRO_RUN_ID`` /
``REPRO_WORKER_ID`` / ``REPRO_CELL_ID`` environment variables, so any
telemetry artifact written inside the worker is correlatable; with
``trace_out`` set it also records a wall-clock fleet trace (one
begin/end slice per cell, hits and failures tagged) that ``repro obs
merge-trace`` aligns against the coordinator's lease slices.
"""

from __future__ import annotations

import asyncio
import os

from repro.experiments.cells import Cell, execute_cell
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_cell,
    expect,
    read_msg,
    send_msg,
)
from repro.service.store import (
    ResultStore,
    code_fingerprint,
    encode_payload,
    payload_sha,
)
from repro.telemetry.fleet import (
    ENV_CELL_ID,
    ENV_RUN_ID,
    ENV_WORKER_ID,
    FleetTraceWriter,
)

__all__ = ["run_worker"]


class _EnvIds:
    """Scoped REPRO_RUN_ID/WORKER_ID/CELL_ID management.

    The loopback tests run workers inside the test process, so the
    correlation ids must be restored on exit rather than left behind.
    """

    def __init__(self) -> None:
        self._saved = {env: os.environ.get(env)
                       for env in (ENV_RUN_ID, ENV_WORKER_ID, ENV_CELL_ID)}

    def set(self, env: str, value: str | None) -> None:
        if value:
            os.environ[env] = value
        else:
            os.environ.pop(env, None)

    def restore(self) -> None:
        for env, value in self._saved.items():
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value


def _maybe_corrupt_sha(key_str: str, sha: str, attempt: int) -> str:
    """Test-only hook: claim a wrong SHA on the first matching attempt."""
    pattern = os.environ.get("REPRO_SERVICE_CORRUPT")
    if pattern and pattern in key_str and attempt == 0:
        return "0" * 64
    return sha


async def _heartbeat_loop(writer: asyncio.StreamWriter, lock: asyncio.Lock,
                          name: str, interval: float) -> None:
    try:
        while True:
            await asyncio.sleep(interval)
            async with lock:
                await send_msg(writer, {"t": "heartbeat", "worker": name})
    except (ConnectionError, OSError):
        return  # the main loop will see the EOF and wind down


async def _snapshot_loop(trace, stats: dict, interval: float) -> None:
    """Periodic progress records in the fleet trace (merged as a counter
    track, so worker throughput is visible over time, not just in sum)."""
    while True:
        await asyncio.sleep(interval)
        trace.snapshot("progress", **stats)


def _execute(cell: Cell, attempt: int, store: ResultStore | None,
             stats: dict) -> dict:
    """Blocking leg, run in a thread: store read-through + simulate."""
    if store is not None:
        hit = store.get(cell.key)
        if hit is not None:
            stats["hits"] += 1
            return encode_payload(hit)
    result = execute_cell(cell, attempt)
    if store is not None:
        store.put(cell.key, result)
    stats["executed"] += 1
    return encode_payload(result)


async def run_worker(
    host: str,
    port: int,
    *,
    worker_id: str | None = None,
    store: ResultStore | None = None,
    connect_retries: int = 0,
    retry_delay: float = 0.5,
    heartbeat_seconds: float | None = None,
    trace_out: str | os.PathLike | None = None,
    snapshot_seconds: float | None = None,
) -> dict:
    """Serve one coordinator until it closes the connection.

    Returns the worker's lifetime counters: ``executed`` simulations,
    ``hits`` from the local store, ``failed`` cell attempts.
    ``connect_retries`` makes startup robust to the coordinator coming
    up a moment later (two-terminal quickstart, CI orchestration).
    """
    last_exc: Exception | None = None
    for attempt in range(connect_retries + 1):
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES)
            break
        except OSError as exc:
            last_exc = exc
            if attempt == connect_retries:
                raise
            await asyncio.sleep(retry_delay)
    del last_exc

    stats = {"executed": 0, "hits": 0, "failed": 0}
    send_lock = asyncio.Lock()
    heartbeat: asyncio.Task | None = None
    snapshotter: asyncio.Task | None = None
    trace: FleetTraceWriter | None = None
    env_ids = _EnvIds()
    try:
        await send_msg(writer, {
            "t": "hello", "role": "worker", "protocol": PROTOCOL_VERSION,
            "worker": worker_id, "fingerprint": code_fingerprint(),
        })
        welcome = expect(await read_msg(reader), "welcome")
        name = welcome.get("worker") or worker_id or "worker"
        run_id = welcome.get("run_id")
        env_ids.set(ENV_RUN_ID, run_id)
        env_ids.set(ENV_WORKER_ID, name)
        if trace_out is not None and run_id:
            trace = FleetTraceWriter(trace_out, role="worker",
                                     run_id=run_id, worker_id=name)
        interval = (heartbeat_seconds if heartbeat_seconds is not None
                    else float(welcome.get("heartbeat", 5.0)))
        heartbeat = asyncio.create_task(
            _heartbeat_loop(writer, send_lock, name, interval))
        if trace is not None and snapshot_seconds:
            snapshotter = asyncio.create_task(
                _snapshot_loop(trace, stats, snapshot_seconds))

        while True:
            msg = await read_msg(reader)
            if msg is None:
                break
            if msg.get("t") != "task":
                continue  # tolerate benign extras (future protocol growth)
            cell = decode_cell(msg["cell"])
            attempt = int(msg.get("attempt", 0))
            cell_id = msg.get("cell_id") or cell.key.digest()
            slice_name = cell.key.key_str().split(":cfg=")[0]
            env_ids.set(ENV_CELL_ID, cell_id)
            if trace is not None:
                trace.event(f"cell {slice_name}", "B", track="cells",
                            cell_id=cell_id, attempt=attempt)
            hits_before = stats["hits"]
            try:
                payload = await asyncio.to_thread(
                    _execute, cell, attempt, store, stats)
            except Exception as exc:
                stats["failed"] += 1
                if trace is not None:
                    trace.event(f"cell {slice_name}", "E", track="cells",
                                status="failed", error=repr(exc))
                async with send_lock:
                    await send_msg(writer, {
                        "t": "task_failed", "task": msg.get("task"),
                        "key": cell.key.digest(), "error": repr(exc),
                    })
                continue
            finally:
                env_ids.set(ENV_CELL_ID, None)
            if trace is not None:
                trace.event(f"cell {slice_name}", "E", track="cells",
                            status="hit" if stats["hits"] > hits_before
                            else "done")
            sha = _maybe_corrupt_sha(cell.key.key_str(),
                                     payload_sha(payload), attempt)
            async with send_lock:
                await send_msg(writer, {
                    "t": "result", "task": msg.get("task"),
                    "key": cell.key.digest(), "payload": payload,
                    "sha": sha,
                })
    finally:
        for task in (heartbeat, snapshotter):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        if trace is not None:
            trace.close(**stats)
        env_ids.restore()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return stats
