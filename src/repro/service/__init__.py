"""Distributed sweep service: coordinator, workers, shared result store.

The experiment layer reduced every figure/table simulation to a pure
``Cell -> result`` function with a canonical merge order
(:mod:`repro.experiments.cells` / :mod:`repro.experiments.parallel`).
This package promotes that contract from one process pool to a fleet:

* :mod:`repro.service.coordinator` — asyncio TCP coordinator: leases,
  heartbeats, retry budgets, dependency-aware dispatch, result fan-out;
* :mod:`repro.service.worker` — executes cells and streams float-hex
  exact payloads back;
* :mod:`repro.service.client` — submit a cell set, receive a
  :class:`~repro.experiments.parallel.ParallelReport` that merges
  bit-identically to a serial run;
* :mod:`repro.service.store` — the shared content-addressed result
  store (same keys/layout as ``.repro-cache/``);
* :mod:`repro.service.protocol` — the newline-delimited JSON wire
  format;
* :mod:`repro.service.leases` — the pure lease/retry bookkeeping.

CLI: ``repro serve`` / ``repro worker`` / ``repro submit``.
Docs: docs/DISTRIBUTED.md (protocol, semantics, security posture).
"""

from repro.service.client import (
    coordinator_status,
    request_shutdown,
    submit_cells,
    submit_cells_async,
)
from repro.service.coordinator import Coordinator
from repro.service.leases import TaskBoard, TaskState
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    parse_addr,
)
from repro.service.store import (
    DEFAULT_STORE_DIR,
    PayloadIntegrityError,
    ResultStore,
)
from repro.service.worker import run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "Coordinator",
    "DEFAULT_STORE_DIR",
    "PayloadIntegrityError",
    "ProtocolError",
    "ResultStore",
    "ServiceError",
    "TaskBoard",
    "TaskState",
    "coordinator_status",
    "parse_addr",
    "request_shutdown",
    "run_worker",
    "submit_cells",
    "submit_cells_async",
]
