"""Asyncio sweep coordinator: dispatch cells to workers, stream results.

One :class:`Coordinator` owns a TCP listener, a :class:`TaskBoard`
(leases, retry budget, ME-dependency gating) and an optional
:class:`~repro.service.store.ResultStore`.  Workers and clients connect
over the newline-delimited JSON protocol (:mod:`repro.service.protocol`)
and are told apart by their ``hello`` role:

* **workers** register, then sit in a request loop: the coordinator
  leases them one cell at a time, they stream back float-hex exact
  payloads, heartbeats extend their leases.  A worker that disconnects
  releases its leases instantly; one that hangs while connected loses
  them at the lease deadline.  Either way the cell is requeued for
  another worker until its retry budget (``max_attempts``) is spent.
* **clients** submit batches of encoded cells.  Warm-store hits complete
  immediately; everything else is dispatched, and each completed cell is
  streamed back (``cell_done`` with payload + SHA) the moment it lands,
  followed by one ``job_done``.  Two jobs submitting the same cell share
  one execution — cells are deduplicated globally by key digest.

Every incoming result is verified (SHA-256 over the canonical payload
JSON) before it is stored or forwarded; a corrupted payload costs the
sender nothing but the cell one attempt.  Results are pure functions of
their cell, so a late result from an expired lease is accepted if it is
the first valid one — determinism makes acceptance idempotent.

The coordinator never orders results: clients reassemble their report in
canonical cell-key order, which is what keeps distributed output
byte-identical to serial (see docs/DISTRIBUTED.md).

Progress is mirrored onto an optional telemetry bus as instant events:
``service.worker`` (join/leave), ``service.cell`` (dispatch / done /
failed, with worker and attempt count) and ``service.job``
(submit/done).

Fleet observability (opt-in): pass a
:class:`~repro.telemetry.fleet.FleetObserver` and the coordinator
mirrors every lease grant/complete/expire/retry, heartbeat, store probe
and worker join/leave into fleet metrics and wall-clock trace slices,
serves the live metrics snapshot through ``status_reply.fleet``, and
stamps its ``run_id`` into every ``welcome`` so workers and clients can
correlate their own artifacts with the coordinator's timeline.  Without
an observer the only addition over PR 6 is the ``run_id`` string itself.
"""

from __future__ import annotations

import asyncio
import itertools
import time

from repro.experiments.cache import payload_sha
from repro.experiments.cells import CellKey
from repro.service.leases import TaskBoard, TaskState
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_cell,
    read_msg,
    send_msg,
)
from repro.service.store import (
    PayloadIntegrityError,
    ResultStore,
    code_fingerprint,
    encode_payload,
)
from repro.telemetry.bus import TelemetryBus
from repro.telemetry.fleet import FleetObserver, new_run_id

__all__ = ["Coordinator"]


class _WorkerConn:
    """One registered worker connection."""

    __slots__ = ("name", "writer", "current", "executed", "send_lock")

    def __init__(self, name: str, writer: asyncio.StreamWriter) -> None:
        self.name = name
        self.writer = writer
        self.current: str | None = None  # digest of the leased cell
        self.executed = 0
        self.send_lock = asyncio.Lock()


class _Job:
    """One client submission: the cells it wants and where to stream."""

    __slots__ = ("job_id", "writer", "remaining", "total", "failures",
                 "done_count", "send_lock", "dead", "t0")

    def __init__(self, job_id: int, writer: asyncio.StreamWriter,
                 digests: set[str]) -> None:
        self.job_id = job_id
        self.writer = writer
        self.remaining = set(digests)
        self.total = len(digests)
        self.failures = 0
        self.done_count = 0
        self.send_lock = asyncio.Lock()
        self.dead = False
        self.t0 = time.perf_counter()


class Coordinator:
    """The sweep service's brain; see the module docstring."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store: ResultStore | None = None,
        lease_seconds: float = 60.0,
        max_attempts: int = 3,
        bus: TelemetryBus | None = None,
        fingerprint: str | None = None,
        observer: FleetObserver | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.store = store
        self.lease_seconds = lease_seconds
        self.bus = bus
        self.fingerprint = fingerprint or code_fingerprint()
        self.observer = observer
        self.run_id = observer.run_id if observer is not None else new_run_id()
        if observer is not None:
            observer.board_counts = lambda: self.board.counts()
        self.board = TaskBoard(max_attempts=max_attempts)
        self.workers: dict[str, _WorkerConn] = {}
        self.jobs: dict[int, _Job] = {}
        #: digest -> jobs waiting on that cell
        self._watchers: dict[str, list[_Job]] = {}
        self.stats = {
            "results": 0, "hits": 0, "reassigned": 0, "expired": 0,
            "sha_mismatch": 0, "worker_errors": 0, "failed_cells": 0,
            "jobs": 0,
        }
        self._task_ids = itertools.count(1)
        self._job_ids = itertools.count(1)
        self._anon_ids = itertools.count(1)
        self._event_seq = itertools.count(1)
        self._dispatch_lock = asyncio.Lock()
        self._stopping = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._reaper: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = asyncio.create_task(self._reap_loop())
        if self.observer is not None:
            self.observer.start()

    async def wait_stopped(self) -> None:
        """Block until a ``shutdown`` message arrives (CLI serve loop)."""
        await self._stopping.wait()

    async def stop(self) -> None:
        """Close the listener and every connection; cancel the reaper."""
        self._stopping.set()
        if self.observer is not None:
            await self.observer.stop()
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        for conn in list(self.workers.values()):
            conn.writer.close()
        for job in list(self.jobs.values()):
            job.writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- telemetry ---------------------------------------------------------------

    def _emit(self, name: str, **args) -> None:
        if self.bus is not None:
            self.bus.emit(name, "instant", cycle=next(self._event_seq),
                          track="service", **args)

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            hello = await read_msg(reader)
            if hello is None or hello.get("t") != "hello":
                await send_msg(writer, {"t": "error",
                                        "error": "expected hello"})
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                await send_msg(writer, {
                    "t": "error",
                    "error": f"protocol {hello.get('protocol')!r} != "
                             f"{PROTOCOL_VERSION}",
                })
                return
            if hello.get("fingerprint") != self.fingerprint:
                await send_msg(writer, {
                    "t": "error",
                    "error": "code fingerprint mismatch: coordinator runs "
                             f"{self.fingerprint}, peer runs "
                             f"{hello.get('fingerprint')} — results would "
                             "not be comparable",
                })
                return
            role = hello.get("role")
            if role == "worker":
                await self._worker_loop(hello, reader, writer)
            elif role == "client":
                await self._client_loop(hello, reader, writer)
            else:
                await send_msg(writer, {"t": "error",
                                        "error": f"unknown role {role!r}"})
        except (ConnectionError, ProtocolError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- worker side -------------------------------------------------------------

    async def _worker_loop(self, hello: dict, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        name = hello.get("worker") or f"worker-{next(self._anon_ids)}"
        if name in self.workers:
            name = f"{name}-{next(self._anon_ids)}"
        conn = _WorkerConn(name, writer)
        self.workers[name] = conn
        await send_msg(writer, {
            "t": "welcome", "protocol": PROTOCOL_VERSION,
            "fingerprint": self.fingerprint, "worker": name,
            "lease": self.lease_seconds,
            "heartbeat": round(max(self.lease_seconds / 3.0, 0.05), 3),
            "run_id": self.run_id,
        })
        self._emit("service.worker", status="join", worker=name)
        if self.observer is not None:
            self.observer.on_worker_join(name)
        try:
            await self._dispatch()
            while True:
                msg = await read_msg(reader)
                if msg is None:
                    break
                t = msg.get("t")
                if t == "heartbeat":
                    self.board.extend_leases(name, time.monotonic(),
                                             self.lease_seconds)
                    if self.observer is not None:
                        self.observer.on_heartbeat(name)
                elif t == "result":
                    await self._on_result(conn, msg)
                elif t == "task_failed":
                    await self._on_task_failed(conn, msg)
                else:
                    raise ProtocolError(f"unexpected worker message {t!r}")
        finally:
            self.workers.pop(name, None)
            released = self.board.release_worker(name)
            self.stats["reassigned"] += sum(
                1 for s in released if s.status == "pending")
            self._emit("service.worker", status="leave", worker=name,
                       executed=conn.executed, released=len(released))
            if self.observer is not None:
                self.observer.on_worker_leave(name, conn.executed)
            for state in released:
                if state.status == "failed":
                    await self._finish_cell(state.digest)
            if not self._stopping.is_set():
                await self._dispatch()

    async def _on_result(self, conn: _WorkerConn, msg: dict) -> None:
        digest = msg.get("key")
        state = self.board.tasks.get(digest)
        if conn.current == digest:
            conn.current = None
        if state is None or state.status == "done":
            await self._dispatch()  # stale or duplicate result; ignore
            return
        payload = msg.get("payload")
        sha = msg.get("sha", "")
        try:
            if self.store is not None:
                result = self.store.admit(state.cell.key, payload, sha)
            else:
                if payload_sha(payload) != sha:
                    raise PayloadIntegrityError(
                        f"payload SHA mismatch for {state.cell.key.key_str()}"
                    )
                from repro.service.store import decode_payload

                result = decode_payload(payload)
        except (PayloadIntegrityError, TypeError) as exc:
            self.stats["sha_mismatch"] += 1
            status = self.board.release(state, repr(exc))
            self._emit("service.cell", status="corrupt", key=digest,
                       worker=conn.name, attempts=state.attempts)
            if self.observer is not None:
                self.observer.on_lease_ended(digest, "corrupt")
            if status == "failed":
                await self._finish_cell(digest)
            else:
                self.stats["reassigned"] += 1
            await self._dispatch()
            return
        self.board.mark_done(digest, result)
        self.stats["results"] += 1
        conn.executed += 1
        self._emit("service.cell", status="done", key=digest,
                   worker=conn.name, attempts=state.attempts)
        if self.observer is not None:
            self.observer.on_lease_ended(digest, "done")
        await self._finish_cell(digest)
        await self._dispatch()

    async def _on_task_failed(self, conn: _WorkerConn, msg: dict) -> None:
        digest = msg.get("key")
        state = self.board.tasks.get(digest)
        if conn.current == digest:
            conn.current = None
        if state is None or state.status != "leased":
            await self._dispatch()
            return
        self.stats["worker_errors"] += 1
        if self.observer is not None:
            self.observer.on_lease_ended(digest, "failed")
        status = self.board.release(state,
                                    str(msg.get("error", "worker error")))
        if status == "failed":
            await self._finish_cell(digest)
        else:
            self.stats["reassigned"] += 1
        await self._dispatch()

    # -- client side -------------------------------------------------------------

    async def _client_loop(self, hello: dict, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        await send_msg(writer, {
            "t": "welcome", "protocol": PROTOCOL_VERSION,
            "fingerprint": self.fingerprint,
            "lease": self.lease_seconds,
            "run_id": self.run_id,
        })
        job: _Job | None = None
        try:
            while True:
                msg = await read_msg(reader)
                if msg is None:
                    break
                t = msg.get("t")
                if t == "submit":
                    job = await self._on_submit(msg, writer)
                elif t == "status":
                    reply = {
                        "t": "status_reply",
                        "workers": sorted(self.workers),
                        "tasks": self.board.counts(),
                        "jobs": len(self.jobs),
                        "stats": dict(self.stats),
                        "run_id": self.run_id,
                    }
                    if self.observer is not None:
                        fleet = self.observer.status_doc()
                        if fleet is not None:
                            reply["fleet"] = fleet
                    await send_msg(writer, reply)
                elif t == "shutdown":
                    await send_msg(writer, {"t": "bye"})
                    self._stopping.set()
                    break
                else:
                    raise ProtocolError(f"unexpected client message {t!r}")
        finally:
            if job is not None:
                job.dead = True
                self.jobs.pop(job.job_id, None)

    async def _on_submit(self, msg: dict,
                         writer: asyncio.StreamWriter) -> _Job:
        cells = [decode_cell(doc) for doc in msg.get("cells", ())]
        job = _Job(next(self._job_ids), writer,
                   {c.key.digest() for c in cells})
        self.jobs[job.job_id] = job
        self.stats["jobs"] += 1
        hits = 0
        for cell in cells:
            state = self.board.add(cell)
            if state.status == "pending" and state.attempts == 0:
                # probe the warm store once per cell
                cached = (self.store.get(cell.key)
                          if self.store is not None else None)
                if self.observer is not None and self.store is not None:
                    self.observer.on_store_probe(cached is not None)
                if cached is not None:
                    self.board.mark_done(state.digest, cached)
                    self.stats["hits"] += 1
                    hits += 1
        for digest in job.remaining:
            self._watchers.setdefault(digest, []).append(job)
        await self._job_send(job, {
            "t": "accepted", "job": job.job_id, "total": job.total,
            "hits": hits,
        })
        self._emit("service.job", status="submitted", job=job.job_id,
                   total=job.total, hits=hits)
        if self.observer is not None:
            self.observer.on_job("submitted", job.job_id, job.total)
        # flush cells that are already settled (store hits, results or
        # failures shared with an earlier job)
        for digest in sorted(job.remaining):
            if self.board.settled(digest):
                await self._notify_job(job, digest)
        await self._maybe_finish_job(job)
        await self._dispatch()
        return job

    # -- job notification --------------------------------------------------------

    async def _job_send(self, job: _Job, msg: dict) -> None:
        if job.dead:
            return
        try:
            async with job.send_lock:
                await send_msg(job.writer, msg)
        except (ConnectionError, OSError):
            job.dead = True

    async def _notify_job(self, job: _Job, digest: str) -> None:
        """Stream one settled cell to one job and update its counters."""
        if digest not in job.remaining:
            return
        job.remaining.discard(digest)
        job.done_count += 1
        state = self.board.tasks[digest]
        key_str = state.cell.key.key_str()
        if state.status == "done":
            payload = encode_payload(self.board.done[digest])
            status = ("hit" if state.attempts == 0
                      else "run" if state.attempts == 1 else "retried")
            await self._job_send(job, {
                "t": "cell_done", "job": job.job_id, "key": digest,
                "key_str": key_str, "status": status,
                "attempts": state.attempts, "payload": payload,
                "sha": payload_sha(payload), "done": job.done_count,
                "total": job.total,
            })
        else:
            job.failures += 1
            await self._job_send(job, {
                "t": "cell_failed", "job": job.job_id, "key": digest,
                "key_str": key_str, "error": state.error,
                "attempts": state.attempts, "done": job.done_count,
                "total": job.total,
            })

    async def _finish_cell(self, digest: str) -> None:
        """A cell settled (done or failed): fan out to waiting jobs."""
        if self.board.tasks.get(digest) is None:
            return
        if self.board.tasks[digest].status == "failed":
            self.stats["failed_cells"] += 1
        for job in self._watchers.pop(digest, []):
            await self._notify_job(job, digest)
            await self._maybe_finish_job(job)

    async def _maybe_finish_job(self, job: _Job) -> None:
        if job.remaining or job.dead:
            return
        await self._job_send(job, {
            "t": "job_done", "job": job.job_id, "total": job.total,
            "failures": job.failures,
            "seconds": round(time.perf_counter() - job.t0, 4),
        })
        self.jobs.pop(job.job_id, None)
        self._emit("service.job", status="done", job=job.job_id,
                   total=job.total, failures=job.failures)
        if self.observer is not None:
            self.observer.on_job("completed", job.job_id, job.total)

    # -- dispatch ----------------------------------------------------------------

    async def _dispatch(self) -> None:
        """Pair idle workers with ready tasks and ship the cells."""
        async with self._dispatch_lock:
            while True:
                idle = [w for w in self.workers.values()
                        if w.current is None]
                if not idle:
                    return
                ready = self.board.ready()
                if not ready:
                    return
                now = time.monotonic()
                for conn, state in zip(idle, ready):
                    cell = self.board.resolve(state)
                    task_id = next(self._task_ids)
                    self.board.lease(state, conn.name, now,
                                     self.lease_seconds, task_id)
                    conn.current = state.digest
                    from repro.service.protocol import encode_cell

                    try:
                        async with conn.send_lock:
                            await send_msg(conn.writer, {
                                "t": "task", "task": task_id,
                                "attempt": state.attempts - 1,
                                "cell": encode_cell(cell),
                                "cell_id": state.digest,
                            })
                    except (ConnectionError, OSError):
                        # the worker loop's finally-clause requeues
                        conn.current = None
                        continue
                    self._emit("service.cell", status="dispatch",
                               key=state.digest, worker=conn.name,
                               attempts=state.attempts)
                    if self.observer is not None:
                        self.observer.on_lease_granted(
                            conn.name, state.digest, cell.key.key_str(),
                            state.attempts - 1)
                if len(ready) <= len(idle):
                    return

    # -- lease reaping -----------------------------------------------------------

    async def _reap_loop(self) -> None:
        period = max(self.lease_seconds / 4.0, 0.05)
        while True:
            await asyncio.sleep(period)
            expired = self.board.expire(time.monotonic())
            if not expired:
                continue
            self.stats["expired"] += len(expired)
            for state in expired:
                # the worker keeps grinding (or is gone); either way the
                # cell is someone else's now
                self._emit("service.cell", status="expired",
                           key=state.digest, attempts=state.attempts)
                if self.observer is not None:
                    self.observer.on_lease_ended(state.digest, "expired")
                if state.status == "failed":
                    await self._finish_cell(state.digest)
                else:
                    self.stats["reassigned"] += 1
            await self._dispatch()

    # -- introspection -----------------------------------------------------------

    def summary(self) -> str:
        s = self.stats
        return (f"{s['results']} results, {s['hits']} store hits, "
                f"{s['reassigned']} reassigned, {s['expired']} expired "
                f"leases, {s['sha_mismatch']} corrupt payloads, "
                f"{s['failed_cells']} failed cells, {s['jobs']} jobs")
