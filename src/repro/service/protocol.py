"""Wire protocol of the distributed sweep service.

Newline-delimited JSON over TCP: every message is one JSON object on one
``\\n``-terminated line.  The framing is deliberately trivial — it can be
spoken with ``netcat``, inspected with ``jq``, and replayed from a log —
because the hard guarantees live one layer up (content-addressed cell
keys, SHA-256 payload integrity, float-hex exact numbers).

Handshake
---------
Every connection opens with a ``hello`` carrying the peer's role
(``"worker"`` or ``"client"``), protocol version and code fingerprint.
The coordinator replies ``welcome`` (echoing its own fingerprint and the
lease/heartbeat intervals) or ``error`` + close: a fingerprint mismatch
is rejected up front, because results computed by a different revision
of the simulator must never enter the store.

Message types
-------------
===============  =======================  ==================================
``t``            direction                 meaning
===============  =======================  ==================================
``hello``        peer -> coordinator       role, protocol, fingerprint
``welcome``      coordinator -> peer       accepted; lease/heartbeat config
``error``        coordinator -> peer       rejected; human-readable reason
``task``         coordinator -> worker     one cell to execute (+ attempt)
``result``       worker -> coordinator     encoded payload + its SHA-256
``task_failed``  worker -> coordinator     execution raised; error text
``heartbeat``    worker -> coordinator     extend every lease of the worker
``submit``       client -> coordinator     a list of encoded cells
``accepted``     coordinator -> client     job id, total, warm-store hits
``cell_done``    coordinator -> client     one finished cell (payload+sha)
``cell_failed``  coordinator -> client     cell exhausted its retry budget
``job_done``     coordinator -> client     job complete; summary counters
``status``       client -> coordinator     request a status snapshot
``status_reply`` coordinator -> client     workers / tasks / jobs counters
``shutdown``     client -> coordinator     stop the coordinator (trusted net)
``bye``          coordinator -> client     shutdown acknowledged
===============  =======================  ==================================

Correlation fields (still protocol 1)
-------------------------------------
Fleet observability added three *optional* fields; absent fields mean an
older peer, and every consumer tolerates that, so the protocol version
is unchanged:

* ``welcome.run_id`` — the coordinator's fleet-run identifier.  Workers
  adopt it for their trace files and ``REPRO_RUN_ID``; clients stamp it
  on their :class:`~repro.experiments.parallel.ParallelReport`.
* ``task.cell_id`` — the cell-key digest of the leased cell (the same
  value ``result.key`` echoes back), exported by workers as
  ``REPRO_CELL_ID`` while the cell executes.
* ``status_reply.run_id`` / ``status_reply.fleet`` — the run identifier
  and, when the coordinator carries a
  :class:`~repro.telemetry.fleet.FleetObserver`, the live fleet-metrics
  snapshot (queue depths, instrument values, per-worker table) the
  ``repro submit --watch`` dashboard renders.

Exactness
---------
Simulation payloads travel through the same float-hex codec as the disk
cache (:func:`repro.experiments.cache.encode_payload`), resolved ME
vectors are shipped as ``float.hex()`` strings, and float-valued policy
constructor arguments are tagged (``{"__float__": "<hex>"}``) — a result
that crossed the network is bit-identical to one computed in process.

Security: the protocol has no authentication or transport encryption.
Run it on trusted networks only (see docs/DISTRIBUTED.md).
"""

from __future__ import annotations

import asyncio
import json

from repro.config import (
    CacheConfig,
    CacheHierarchyConfig,
    ControllerConfig,
    CoreConfig,
    DramTimingConfig,
    DramTopologyConfig,
    SystemConfig,
)
from repro.experiments.cells import Cell, CellKey

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "ServiceError",
    "send_msg",
    "read_msg",
    "expect",
    "encode_config",
    "decode_config",
    "encode_key",
    "decode_key",
    "encode_cell",
    "decode_cell",
    "parse_addr",
]

PROTOCOL_VERSION = 1

#: StreamReader line limit — an 8-core RunResult payload is ~2 KB, so
#: this bounds memory per connection while leaving headroom for large
#: submit batches (cells are ~1 KB each; 16 MB ~ 16k cells per message).
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed or out-of-sequence message."""


class ServiceError(RuntimeError):
    """The coordinator rejected the request (fingerprint mismatch, ...)."""


# -- framing ---------------------------------------------------------------------


async def send_msg(writer: asyncio.StreamWriter, msg: dict) -> None:
    """Write one message (one JSON line) and drain the transport."""
    writer.write(json.dumps(msg, sort_keys=True).encode() + b"\n")
    await writer.drain()


async def read_msg(reader: asyncio.StreamReader) -> dict | None:
    """Read one message; None on a clean EOF.

    Raises :class:`ProtocolError` on garbage (non-JSON or non-object
    lines) — the connection is unusable past that point.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError) as exc:
        raise ProtocolError(f"oversized protocol line: {exc}") from exc
    if not line:
        return None
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable protocol line: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError(f"expected a JSON object, got {type(msg).__name__}")
    return msg


def expect(msg: dict | None, expected: str) -> dict:
    """Assert the message type; raises with the peer's error text."""
    if msg is None:
        raise ServiceError("connection closed by peer")
    if msg.get("t") == "error":
        raise ServiceError(msg.get("error", "peer reported an error"))
    if msg.get("t") != expected:
        raise ProtocolError(f"expected {expected!r}, got {msg.get('t')!r}")
    return msg


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (the CLI address syntax)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {addr!r}")
    return host or "127.0.0.1", int(port)


# -- SystemConfig codec ----------------------------------------------------------
#
# ``dataclasses.asdict`` of a SystemConfig is already JSON-safe (ints,
# floats, strings, bools); the decoder rebuilds the exact nested
# dataclasses, so ``decode_config(encode_config(c)).digest() ==
# c.digest()`` — the property the cell keys rely on.


def encode_config(config: SystemConfig) -> dict:
    from dataclasses import asdict

    return asdict(config)


def decode_config(doc: dict) -> SystemConfig:
    prefetch = None
    if doc.get("prefetch") is not None:
        from repro.cache.prefetch import PrefetchConfig

        prefetch = PrefetchConfig(**doc["prefetch"])
    return SystemConfig(
        num_cores=doc["num_cores"],
        core=CoreConfig(**doc["core"]),
        caches=CacheHierarchyConfig(
            l1i=CacheConfig(**doc["caches"]["l1i"]),
            l1d=CacheConfig(**doc["caches"]["l1d"]),
            l2=CacheConfig(**doc["caches"]["l2"]),
        ),
        dram_timing=DramTimingConfig(**doc["dram_timing"]),
        dram_topology=DramTopologyConfig(**doc["dram_topology"]),
        controller=ControllerConfig(**doc["controller"]),
        prefetch=prefetch,
    )


# -- CellKey / Cell codec --------------------------------------------------------


def _enc_arg(value):
    """Tag float policy-ctor arguments so they survive JSON exactly."""
    if isinstance(value, float) and not isinstance(value, bool):
        return {"__float__": value.hex()}
    return value


def _dec_arg(value):
    if isinstance(value, dict) and "__float__" in value:
        return float.fromhex(value["__float__"])
    return value


def encode_key(key: CellKey) -> dict:
    doc = key.canonical()
    doc["policy_args"] = [[k, _enc_arg(v)] for k, v in key.policy_args]
    return doc


def decode_key(doc: dict) -> CellKey:
    return CellKey(
        kind=doc["kind"],
        workload=doc["workload"],
        policy=doc["policy"],
        seed=doc["seed"],
        inst_budget=doc["inst_budget"],
        warmup=doc["warmup"],
        config_digest=doc["config_digest"],
        phase=doc["phase"],
        lookahead=doc["lookahead"],
        profile_budget=doc["profile_budget"],
        policy_args=tuple((k, _dec_arg(v)) for k, v in doc["policy_args"]),
    )


def encode_cell(cell: Cell) -> dict:
    return {
        "key": encode_key(cell.key),
        "config": encode_config(cell.config),
        "me_deps": [encode_key(k) for k in cell.me_deps],
        "me_values": (None if cell.me_values is None
                      else [float(v).hex() for v in cell.me_values]),
        "policy_ctor_args": [[k, _enc_arg(v)]
                             for k, v in cell.policy_ctor_args],
    }


def decode_cell(doc: dict) -> Cell:
    """Rebuild a cell; verifies the config round-trips to the key digest.

    The digest check catches codec drift (a config field added without
    updating the decoder) before a worker burns CPU on a cell whose
    result would be rejected as mismatched.
    """
    key = decode_key(doc["key"])
    config = decode_config(doc["config"])
    expected = (config.with_cores(1).digest()
                if key.kind in ("profile", "single") else config.digest())
    if key.config_digest != expected:
        raise ProtocolError(
            f"cell {key.key_str()}: decoded config digest {expected} does "
            f"not match the key"
        )
    me_values = doc.get("me_values")
    return Cell(
        key=key,
        config=config,
        me_deps=tuple(decode_key(d) for d in doc.get("me_deps", ())),
        me_values=(None if me_values is None
                   else tuple(float.fromhex(v) for v in me_values)),
        policy_ctor_args=tuple((k, _dec_arg(v))
                               for k, v in doc.get("policy_ctor_args", ())),
    )
