"""Client side of the sweep service: submit cells, collect a report.

:func:`submit_cells` is the distributed counterpart of
:func:`repro.experiments.parallel.run_cells` — same input (a list of
:class:`Cell`), same output (a :class:`ParallelReport` whose ``results``
are ordered by canonical cell key), so
:func:`repro.experiments.parallel.merge_into` and every harness built on
it work unchanged.  Byte-identity of the final tables follows: the
client re-verifies each payload's SHA-256, decodes it with the float-hex
codec, and sorts by key — completion order, worker identity and network
timing cannot leak into the output.

Progress streams onto an optional telemetry bus as the same
``experiment.cell`` / ``experiment.cache`` instant events the local
parallel runner emits, so existing subscribers (the stderr narrator of
``run_all_experiments.py``) work on distributed runs too.
"""

from __future__ import annotations

import asyncio
import time

from repro.experiments.cells import Cell, CellKey
from repro.experiments.parallel import CellFailure, ParallelReport
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServiceError,
    encode_cell,
    expect,
    parse_addr,
    read_msg,
    send_msg,
)
from repro.service.store import (
    PayloadIntegrityError,
    code_fingerprint,
    decode_payload,
    payload_sha,
)
from repro.telemetry.bus import TelemetryBus

__all__ = ["submit_cells", "submit_cells_async", "request_shutdown",
           "coordinator_status"]


async def _open(host: str, port: int):
    reader, writer = await asyncio.open_connection(host, port,
                                                   limit=MAX_LINE_BYTES)
    await send_msg(writer, {
        "t": "hello", "role": "client", "protocol": PROTOCOL_VERSION,
        "fingerprint": code_fingerprint(),
    })
    expect(await read_msg(reader), "welcome")
    return reader, writer


async def submit_cells_async(
    host: str,
    port: int,
    cells: list[Cell],
    *,
    bus: TelemetryBus | None = None,
) -> ParallelReport:
    """Submit cells to a running coordinator and await every result."""
    t0 = time.perf_counter()
    unique: dict[CellKey, Cell] = {}
    for cell in cells:
        unique.setdefault(cell.key, cell)
    ordered = sorted(unique.values(), key=lambda c: c.key.key_str())
    by_digest = {c.key.digest(): c.key for c in ordered}

    report = ParallelReport()
    results: dict[CellKey, object] = {}
    reader, writer = await _open(host, port)
    try:
        await send_msg(writer, {
            "t": "submit",
            "cells": [encode_cell(c) for c in ordered],
        })
        accepted = expect(await read_msg(reader), "accepted")
        total = accepted["total"]
        done = 0
        while True:
            msg = await read_msg(reader)
            if msg is None:
                raise ServiceError(
                    f"coordinator closed the connection with "
                    f"{total - done} cells outstanding"
                )
            t = msg.get("t")
            if t == "cell_done":
                key = by_digest[msg["key"]]
                payload = msg["payload"]
                if payload_sha(payload) != msg.get("sha"):
                    raise PayloadIntegrityError(
                        f"payload SHA mismatch for {key.key_str()} on the "
                        "client link"
                    )
                results[key] = decode_payload(payload)
                done += 1
                status = msg.get("status", "run")
                if status == "hit":
                    report.cache_hits += 1
                else:
                    report.executed += 1
                    if status == "retried":
                        report.retried.append(key.key_str())
                if bus is not None:
                    bus.emit("experiment.cell", "instant", cycle=done,
                             track="experiments", key=key.key_str(),
                             status=status, seconds=0.0, done=done,
                             total=total)
            elif t == "cell_failed":
                key = by_digest[msg["key"]]
                done += 1
                report.failures.append(CellFailure(
                    key.key_str(), str(msg.get("error", "failed")),
                    int(msg.get("attempts", 0)),
                ))
                if bus is not None:
                    bus.emit("experiment.cell", "instant", cycle=done,
                             track="experiments", key=key.key_str(),
                             status="failed", seconds=0.0, done=done,
                             total=total)
            elif t == "job_done":
                break
            else:
                raise ServiceError(f"unexpected message {t!r} mid-job")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    report.results = dict(
        sorted(results.items(), key=lambda kv: kv[0].key_str())
    )
    report.seconds = time.perf_counter() - t0
    report.cache_stats.hits = report.cache_hits
    report.cache_stats.misses = report.executed
    if bus is not None:
        bus.emit("experiment.cache", "instant", cycle=len(report.results),
                 track="experiments", **report.cache_stats.as_dict())
    return report


def submit_cells(addr: str, cells: list[Cell], *,
                 bus: TelemetryBus | None = None) -> ParallelReport:
    """Blocking wrapper: ``addr`` is ``"host:port"``."""
    host, port = parse_addr(addr)
    return asyncio.run(submit_cells_async(host, port, cells, bus=bus))


async def _simple_request(host: str, port: int, msg: dict,
                          reply: str) -> dict:
    reader, writer = await _open(host, port)
    try:
        await send_msg(writer, msg)
        return expect(await read_msg(reader), reply)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def coordinator_status(addr: str) -> dict:
    """Status snapshot (workers, task counts, lifetime stats)."""
    host, port = parse_addr(addr)
    return asyncio.run(_simple_request(host, port, {"t": "status"},
                                       "status_reply"))


def request_shutdown(addr: str) -> None:
    """Ask the coordinator to stop (trusted-network administrative verb)."""
    host, port = parse_addr(addr)
    asyncio.run(_simple_request(host, port, {"t": "shutdown"}, "bye"))
