"""Client side of the sweep service: submit cells, collect a report.

:func:`submit_cells` is the distributed counterpart of
:func:`repro.experiments.parallel.run_cells` — same input (a list of
:class:`Cell`), same output (a :class:`ParallelReport` whose ``results``
are ordered by canonical cell key), so
:func:`repro.experiments.parallel.merge_into` and every harness built on
it work unchanged.  Byte-identity of the final tables follows: the
client re-verifies each payload's SHA-256, decodes it with the float-hex
codec, and sorts by key — completion order, worker identity and network
timing cannot leak into the output.

Progress streams onto an optional telemetry bus as the same
``experiment.cell`` / ``experiment.cache`` instant events the local
parallel runner emits, so existing subscribers (the stderr narrator of
``run_all_experiments.py``) work on distributed runs too.
"""

from __future__ import annotations

import asyncio
import sys
import time

from repro.experiments.cells import Cell, CellKey
from repro.experiments.parallel import CellFailure, ParallelReport
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServiceError,
    encode_cell,
    expect,
    parse_addr,
    read_msg,
    send_msg,
)
from repro.service.store import (
    PayloadIntegrityError,
    code_fingerprint,
    decode_payload,
    payload_sha,
)
from repro.telemetry.bus import TelemetryBus

__all__ = ["submit_cells", "submit_cells_async", "request_shutdown",
           "coordinator_status"]


async def _open(host: str, port: int):
    reader, writer = await asyncio.open_connection(host, port,
                                                   limit=MAX_LINE_BYTES)
    await send_msg(writer, {
        "t": "hello", "role": "client", "protocol": PROTOCOL_VERSION,
        "fingerprint": code_fingerprint(),
    })
    welcome = expect(await read_msg(reader), "welcome")
    return reader, writer, welcome


async def _watch_loop(host: str, port: int, progress: dict,
                      interval: float, out=None) -> None:
    """``repro submit --watch``: poll status, redraw the dashboard.

    Runs on its own connection so the job stream stays untouched.  On a
    TTY each frame overwrites the last (ANSI cursor-up); on a pipe the
    frames are simply appended, which is still a usable progress log.
    """
    from repro.telemetry.fleet import render_dashboard

    out = out if out is not None else sys.stderr
    tty = getattr(out, "isatty", lambda: False)()
    prev_lines = 0
    while True:
        await asyncio.sleep(interval)
        try:
            status = await _simple_request(host, port, {"t": "status"},
                                           "status_reply")
        except (OSError, ServiceError):
            continue  # coordinator busy or briefly unreachable; retry
        frame = render_dashboard(status, progress["done"],
                                 progress["total"])
        n_lines = frame.count("\n") + 1
        if tty and prev_lines:
            out.write("\x1b[F\x1b[K" * prev_lines)
        out.write(frame + "\n")
        out.flush()
        prev_lines = n_lines if tty else 0


async def submit_cells_async(
    host: str,
    port: int,
    cells: list[Cell],
    *,
    bus: TelemetryBus | None = None,
    watch_seconds: float | None = None,
) -> ParallelReport:
    """Submit cells to a running coordinator and await every result.

    ``watch_seconds`` enables the live dashboard: a sidecar connection
    polls coordinator status every that-many seconds and renders the
    progress bar + worker table to stderr until the job completes.
    """
    t0 = time.perf_counter()
    unique: dict[CellKey, Cell] = {}
    for cell in cells:
        unique.setdefault(cell.key, cell)
    ordered = sorted(unique.values(), key=lambda c: c.key.key_str())
    by_digest = {c.key.digest(): c.key for c in ordered}

    report = ParallelReport()
    results: dict[CellKey, object] = {}
    reader, writer, welcome = await _open(host, port)
    report.run_id = welcome.get("run_id")
    progress = {"done": 0, "total": len(ordered)}
    watcher: asyncio.Task | None = None
    try:
        await send_msg(writer, {
            "t": "submit",
            "cells": [encode_cell(c) for c in ordered],
        })
        accepted = expect(await read_msg(reader), "accepted")
        total = accepted["total"]
        progress["total"] = total
        if watch_seconds is not None:
            watcher = asyncio.create_task(
                _watch_loop(host, port, progress, watch_seconds))
        done = 0
        while True:
            msg = await read_msg(reader)
            if msg is None:
                raise ServiceError(
                    f"coordinator closed the connection with "
                    f"{total - done} cells outstanding"
                )
            t = msg.get("t")
            if t == "cell_done":
                key = by_digest[msg["key"]]
                payload = msg["payload"]
                if payload_sha(payload) != msg.get("sha"):
                    raise PayloadIntegrityError(
                        f"payload SHA mismatch for {key.key_str()} on the "
                        "client link"
                    )
                results[key] = decode_payload(payload)
                done += 1
                progress["done"] = done
                status = msg.get("status", "run")
                if status == "hit":
                    report.cache_hits += 1
                else:
                    report.executed += 1
                    if status == "retried":
                        report.retried.append(key.key_str())
                if bus is not None:
                    bus.emit("experiment.cell", "instant", cycle=done,
                             track="experiments", key=key.key_str(),
                             status=status, seconds=0.0, done=done,
                             total=total)
            elif t == "cell_failed":
                key = by_digest[msg["key"]]
                done += 1
                progress["done"] = done
                report.failures.append(CellFailure(
                    key.key_str(), str(msg.get("error", "failed")),
                    int(msg.get("attempts", 0)),
                ))
                if bus is not None:
                    bus.emit("experiment.cell", "instant", cycle=done,
                             track="experiments", key=key.key_str(),
                             status="failed", seconds=0.0, done=done,
                             total=total)
            elif t == "job_done":
                break
            else:
                raise ServiceError(f"unexpected message {t!r} mid-job")
    finally:
        if watcher is not None:
            watcher.cancel()
            try:
                await watcher
            except asyncio.CancelledError:
                pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    report.results = dict(
        sorted(results.items(), key=lambda kv: kv[0].key_str())
    )
    report.seconds = time.perf_counter() - t0
    report.cache_stats.hits = report.cache_hits
    report.cache_stats.misses = report.executed
    if bus is not None:
        bus.emit("experiment.cache", "instant", cycle=len(report.results),
                 track="experiments", **report.cache_stats.as_dict())
    return report


def submit_cells(addr: str, cells: list[Cell], *,
                 bus: TelemetryBus | None = None,
                 watch_seconds: float | None = None) -> ParallelReport:
    """Blocking wrapper: ``addr`` is ``"host:port"``."""
    host, port = parse_addr(addr)
    return asyncio.run(submit_cells_async(host, port, cells, bus=bus,
                                          watch_seconds=watch_seconds))


async def _simple_request(host: str, port: int, msg: dict,
                          reply: str) -> dict:
    reader, writer, _welcome = await _open(host, port)
    try:
        await send_msg(writer, msg)
        return expect(await read_msg(reader), reply)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def coordinator_status(addr: str) -> dict:
    """Status snapshot (workers, task counts, lifetime stats)."""
    host, port = parse_addr(addr)
    return asyncio.run(_simple_request(host, port, {"t": "status"},
                                       "status_reply"))


def request_shutdown(addr: str) -> None:
    """Ask the coordinator to stop (trusted-network administrative verb)."""
    host, port = parse_addr(addr)
    asyncio.run(_simple_request(host, port, {"t": "shutdown"}, "bye"))
