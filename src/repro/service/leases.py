"""Task state, leases and the retry budget of the sweep coordinator.

The :class:`TaskBoard` is the coordinator's pure bookkeeping core — no
sockets, no clocks of its own — so every lease/retry/expiry rule is unit
testable with explicit timestamps.

Lifecycle of one cell::

    pending --lease()--> leased --mark_done()-----------------> done
       ^                   |
       |                   +-- release() / expire() / release_worker()
       +---- attempts < max_attempts ----+      (requeued for another worker)
                                         |
                      attempts >= max_attempts --> failed

* **Leases** — a dispatched cell is leased to one worker until a
  deadline; a ``heartbeat`` from the worker extends every lease it
  holds.  A worker that crashes (connection drop) releases its leases
  immediately; one that hangs while connected loses them at the
  deadline (:meth:`expire`).
* **Retry budget** — ``attempts`` counts leases.  A cell that fails
  (worker exception, SHA mismatch, lease expiry, disconnect) goes back
  to ``pending`` until it has been leased ``max_attempts`` times, then
  it is ``failed`` permanently and reported to every submitting client.
* **Dependencies** — an ME-family cell without a resolved ME vector is
  not ready until every profile cell it depends on has finished; the
  board resolves the vector at dispatch (:meth:`resolve`).  A dependency
  that is *absent from the board* or permanently failed does not block
  the cell: it ships with ``me_values=None`` and the worker profiles
  in-process (deterministic, hence still bit-identical).

Results are deterministic pure functions of the cell, so accepting a
late result from an expired lease is harmless — the board takes the
first valid payload for a cell and ignores the rest.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.experiments.cells import ME_FAMILY, Cell

__all__ = ["TaskState", "TaskBoard"]


@dataclass
class TaskState:
    """One cell's scheduling state on the coordinator."""

    cell: Cell
    digest: str
    status: str = "pending"  # pending | leased | done | failed
    attempts: int = 0  # number of leases handed out so far
    worker: str | None = None
    task_id: int = 0
    lease_deadline: float = 0.0
    error: str = ""


class TaskBoard:
    """Dedup, readiness, lease and retry bookkeeping for a cell set."""

    def __init__(self, max_attempts: int = 3) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.tasks: dict[str, TaskState] = {}
        #: decoded payloads of finished cells (profile payloads feed the
        #: ME resolution of dependent eval cells)
        self.done: dict[str, object] = {}

    # -- intake ------------------------------------------------------------------

    def add(self, cell: Cell) -> TaskState:
        """Register a cell (idempotent across jobs — same digest, same
        task), returning its state."""
        digest = cell.key.digest()
        state = self.tasks.get(digest)
        if state is None:
            state = TaskState(cell=cell, digest=digest)
            self.tasks[digest] = state
        return state

    # -- readiness / dispatch ----------------------------------------------------

    def _blocked(self, state: TaskState) -> bool:
        cell = state.cell
        if cell.me_values is not None or cell.key.policy not in ME_FAMILY:
            return False
        for dep_key in cell.me_deps:
            dep = self.tasks.get(dep_key.digest())
            if dep is not None and dep.status in ("pending", "leased"):
                return True
        return False

    def ready(self) -> list[TaskState]:
        """Pending tasks whose dependencies are settled, in key order."""
        out = [s for s in self.tasks.values()
               if s.status == "pending" and not self._blocked(s)]
        out.sort(key=lambda s: s.cell.key.key_str())
        return out

    def resolve(self, state: TaskState) -> Cell:
        """The cell to ship: ME vector filled in from finished profiles.

        Falls back to the unresolved cell (worker profiles in-process)
        when a dependency is missing or failed.
        """
        cell = state.cell
        if cell.me_values is not None or cell.key.policy not in ME_FAMILY:
            return cell
        values: list[float] = []
        for dep_key in cell.me_deps:
            payload = self.done.get(dep_key.digest())
            if payload is None:
                return cell
            values.append(payload.me)
        return cell.with_me_values(tuple(values))

    def lease(self, state: TaskState, worker: str, now: float,
              duration: float, task_id: int) -> None:
        state.status = "leased"
        state.worker = worker
        state.task_id = task_id
        state.attempts += 1
        state.lease_deadline = now + duration

    # -- completion / failure ----------------------------------------------------

    def mark_done(self, digest: str, payload: object) -> None:
        state = self.tasks[digest]
        state.status = "done"
        state.worker = None
        state.error = ""
        self.done[digest] = payload

    def release(self, state: TaskState, error: str) -> str:
        """One attempt failed; requeue or exhaust.  Returns new status."""
        state.worker = None
        state.error = error
        state.status = ("failed" if state.attempts >= self.max_attempts
                        else "pending")
        return state.status

    def extend_leases(self, worker: str, now: float, duration: float) -> int:
        """Heartbeat: push every lease deadline of ``worker`` out."""
        n = 0
        for state in self.tasks.values():
            if state.status == "leased" and state.worker == worker:
                state.lease_deadline = now + duration
                n += 1
        return n

    def expire(self, now: float) -> list[TaskState]:
        """Release every lease whose deadline has passed."""
        out = []
        for state in self.tasks.values():
            if state.status == "leased" and state.lease_deadline < now:
                self.release(state, f"lease expired on {state.worker!r}")
                out.append(state)
        return out

    def release_worker(self, worker: str) -> list[TaskState]:
        """A worker disconnected: release everything it held."""
        out = []
        for state in self.tasks.values():
            if state.status == "leased" and state.worker == worker:
                self.release(state, f"worker {worker!r} disconnected")
                out.append(state)
        return out

    # -- introspection -----------------------------------------------------------

    def counts(self) -> dict[str, int]:
        c = Counter(s.status for s in self.tasks.values())
        return {k: c.get(k, 0) for k in ("pending", "leased", "done",
                                         "failed")}

    def settled(self, digest: str) -> bool:
        """Done or permanently failed (nothing more will happen)."""
        state = self.tasks.get(digest)
        return state is not None and state.status in ("done", "failed")
