"""Content-addressed result store shared by the sweep service.

:class:`ResultStore` *is* the experiment result cache
(:class:`repro.experiments.cache.ResultCache`): same cell-key digests,
same code-fingerprint invalidation, same float-hex payload codec, same
atomic + locked writes, same ``.repro-cache/``-style directory layout.
A directory written by a local ``run_all_experiments.py --jobs`` run is
a warm store for a coordinator, and a store populated by a fleet is a
warm ``--resume`` cache for a laptop — that shared addressing is what
lets workers on any host deduplicate work.

On top of the cache it adds the service-side verification path:
:meth:`admit` checks a wire payload's SHA-256 against the sender's
claim *before* decoding or storing it, so a corrupted or tampered
result is rejected (and the cell retried) rather than persisted.
"""

from __future__ import annotations

from repro.experiments.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    code_fingerprint,
    decode_payload,
    encode_payload,
    payload_sha,
)
from repro.experiments.cells import CellKey

__all__ = ["DEFAULT_STORE_DIR", "PayloadIntegrityError", "ResultStore",
           "code_fingerprint", "encode_payload", "decode_payload",
           "payload_sha"]

#: the service store defaults to the local runner's cache directory, so
#: local and distributed runs share warm entries out of the box.
DEFAULT_STORE_DIR = DEFAULT_CACHE_DIR


class PayloadIntegrityError(ValueError):
    """A wire payload failed SHA-256 verification or would not decode."""


class ResultStore(ResultCache):
    """The distributed sweep service's view of the result cache."""

    def admit(self, key: CellKey, payload: dict, sha: str):
        """Verify, store and decode one wire payload.

        Raises :class:`PayloadIntegrityError` when the payload's actual
        SHA-256 does not match the sender's claim or the payload does
        not decode — the caller treats that as a failed attempt and
        retries the cell elsewhere.  Returns the decoded result.
        """
        if payload_sha(payload) != sha:
            raise PayloadIntegrityError(
                f"payload SHA mismatch for {key.key_str()}"
            )
        try:
            result = decode_payload(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise PayloadIntegrityError(
                f"payload for {key.key_str()} does not decode: {exc}"
            ) from exc
        self.put_payload(key, payload)
        return result
