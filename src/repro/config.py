"""System configuration (the paper's Table 1, as dataclasses).

Every component of the simulator is configured from one
:class:`SystemConfig`.  The defaults reproduce Table 1 of the paper:

* 1/2/4/8 cores, 3.2 GHz, 4-issue, ROB 196, 32-entry LQ/SQ
* per-core 64 KB 2-way L1I/L1D (1 / 3-cycle hit), shared 4 MB 4-way L2
  (15-cycle hit), 64 B lines
* MSHRs: 8 inst / 32 data per core, 64 at the L2
* 2 logic channels x (2 physical channels), 2 DIMMs/physical channel,
  4 banks/DIMM; 800 MT/s, 16 B per logic channel transfer (12.8 GB/s each)
* DDR2 5-5-5: tRP = tRCD = CL = 12.5 ns; 64-entry controller buffer,
  15 ns controller overhead; close-page with cache-line interleaving.

All latencies are stored in CPU cycles (3.2 GHz) — see
:mod:`repro.util.units`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.util.units import CPU_FREQ_HZ, ns_to_cycles

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.cache.prefetch import PrefetchConfig

__all__ = [
    "CoreConfig",
    "CacheConfig",
    "CacheHierarchyConfig",
    "DramTimingConfig",
    "DramTopologyConfig",
    "ControllerConfig",
    "SystemConfig",
]


@dataclass(frozen=True)
class CoreConfig:
    """One processor core (Table 1, rows 'Processor' .. 'Physical register')."""

    freq_hz: float = CPU_FREQ_HZ
    issue_width: int = 4
    rob_size: int = 196
    load_queue: int = 32
    store_queue: int = 32
    #: data-cache MSHRs limit outstanding L1D misses per core
    data_mshrs: int = 32
    #: instruction-cache MSHRs (the synthetic traces are data-dominated,
    #: but the limit is enforced for completeness)
    inst_mshrs: int = 8

    def validate(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.rob_size < 1:
            raise ValueError("rob_size must be >= 1")
        if self.data_mshrs < 1:
            raise ValueError("data_mshrs must be >= 1")


@dataclass(frozen=True)
class CacheConfig:
    """One cache level (size/associativity/line/hit latency)."""

    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 1
    #: maximum outstanding misses (MSHR entries) at this cache
    mshrs: int = 32

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        return max(sets, 1)

    def validate(self) -> None:
        if self.size_bytes < self.assoc * self.line_bytes:
            raise ValueError(
                f"cache of {self.size_bytes} B cannot hold {self.assoc} ways "
                f"of {self.line_bytes} B lines"
            )
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError("cache size must be a whole number of sets")
        n = self.num_sets
        if n & (n - 1):
            raise ValueError(f"number of sets must be a power of two, got {n}")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")


@dataclass(frozen=True)
class CacheHierarchyConfig:
    """Per-core L1s + shared L2 (Table 1 cache rows)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=64 * 1024, assoc=2, hit_latency=1, mshrs=8
        )
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=64 * 1024, assoc=2, hit_latency=3, mshrs=32
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=4 * 1024 * 1024, assoc=4, hit_latency=15, mshrs=64
        )
    )

    def validate(self) -> None:
        for c in (self.l1i, self.l1d, self.l2):
            c.validate()
        if not (self.l1i.line_bytes == self.l1d.line_bytes == self.l2.line_bytes):
            raise ValueError("all cache levels must share one line size")


@dataclass(frozen=True)
class DramTimingConfig:
    """DDR2 timing (Table 1 'DRAM latency' row), in CPU cycles.

    The 5-5-5 part at 800 MT/s gives tRP = tRCD = CL = 12.5 ns, i.e. 40 CPU
    cycles at 3.2 GHz.  A 64 B line moves in 4 transfers of 16 B on a logic
    channel at 800 MT/s -> 5 ns -> 16 CPU cycles.
    """

    t_rp: int = ns_to_cycles(12.5)
    t_rcd: int = ns_to_cycles(12.5)
    t_cl: int = ns_to_cycles(12.5)
    #: data-burst occupancy of the channel for one 64 B line
    t_burst: int = 16
    #: write recovery before precharge after a write burst (tWR ~ 15 ns)
    t_wr: int = ns_to_cycles(15.0)
    #: ACT-to-ACT spacing on one channel (tRRD ~ 7.5 ns); 0 disables.
    #: The paper's simulator does not model it — fidelity extension.
    t_rrd: int = 0
    #: four-activate window (tFAW ~ 37.5 ns); 0 disables
    t_faw: int = 0

    @property
    def row_miss_core_latency(self) -> int:
        """ACT + CAS + burst for a closed-row access (no queueing)."""
        return self.t_rcd + self.t_cl + self.t_burst

    def validate(self) -> None:
        for name in ("t_rp", "t_rcd", "t_cl", "t_burst", "t_wr"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1 cycle")
        if self.t_rrd < 0 or self.t_faw < 0:
            raise ValueError("t_rrd/t_faw must be >= 0 (0 disables)")


@dataclass(frozen=True)
class DramTopologyConfig:
    """Channel/DIMM/bank organisation (Table 1 'Memory' row).

    Scheduling and the data bus are per *logic* channel; the two physical
    channels of a logic channel are ganged (that is how the paper gets a
    16 B transfer width).  Banks behind one logic channel:
    ``dimms_per_phys * banks_per_dimm * phys_per_logic``.
    """

    logic_channels: int = 2
    phys_per_logic: int = 2
    dimms_per_phys: int = 2
    banks_per_dimm: int = 4
    row_bytes: int = 8 * 1024

    @property
    def banks_per_channel(self) -> int:
        return self.phys_per_logic * self.dimms_per_phys * self.banks_per_dimm

    @property
    def total_banks(self) -> int:
        return self.logic_channels * self.banks_per_channel

    def validate(self) -> None:
        for name in (
            "logic_channels",
            "phys_per_logic",
            "dimms_per_phys",
            "banks_per_dimm",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.logic_channels & (self.logic_channels - 1):
            raise ValueError("logic_channels must be a power of two")
        if self.banks_per_channel & (self.banks_per_channel - 1):
            raise ValueError("banks per channel must be a power of two")
        if self.row_bytes & (self.row_bytes - 1):
            raise ValueError("row_bytes must be a power of two")


@dataclass(frozen=True)
class ControllerConfig:
    """Memory controller (Table 1 'Memory controller' row + Section 3.2).

    ``buffer_entries`` is the shared request buffer; writes are drained when
    the write queue exceeds ``write_drain_high`` (default half the buffer)
    until it falls below ``write_drain_low`` (default a quarter) — exactly
    the paper's hysteresis.
    """

    buffer_entries: int = 64
    overhead: int = ns_to_cycles(15.0)
    write_drain_high: int = 32
    write_drain_low: int = 16
    #: per-thread cap on pending requests (sizes the priority table)
    max_pending_per_core: int = 64
    #: 'closed' = paper default (controller-managed: keep row open only while
    #: queued hits exist); 'open' keeps rows open until a conflict (ablation)
    page_policy: str = "closed"
    #: model DDR2 auto-refresh (off in the paper's simulator; fidelity
    #: extension — costs ~1-3 % of channel time)
    refresh_enabled: bool = False

    def validate(self) -> None:
        if self.buffer_entries < 1:
            raise ValueError("buffer_entries must be >= 1")
        if not 0 <= self.write_drain_low <= self.write_drain_high <= self.buffer_entries:
            raise ValueError(
                "need 0 <= write_drain_low <= write_drain_high <= buffer_entries"
            )
        if self.page_policy not in ("closed", "open"):
            raise ValueError(f"unknown page_policy {self.page_policy!r}")
        if self.max_pending_per_core < 1:
            raise ValueError("max_pending_per_core must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level system: cores + caches + DRAM + controller.

    ``num_cores`` is the only knob the paper varies (1/2/4/8); everything
    else defaults to Table 1.  ``prefetch`` enables the stream-prefetcher
    extension (off in the paper's configuration).
    """

    num_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    caches: CacheHierarchyConfig = field(default_factory=CacheHierarchyConfig)
    dram_timing: DramTimingConfig = field(default_factory=DramTimingConfig)
    dram_topology: DramTopologyConfig = field(default_factory=DramTopologyConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    prefetch: "PrefetchConfig | None" = None

    @property
    def line_bytes(self) -> int:
        return self.caches.l2.line_bytes

    def digest(self) -> str:
        """Short stable hash of every configuration field.

        Two runs with equal digests simulated the same machine; telemetry
        exporters stamp it into their artifact headers so results are
        self-describing.
        """
        import hashlib
        import json
        from dataclasses import asdict

        canonical = json.dumps(asdict(self), sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    def validate(self) -> "SystemConfig":
        """Check cross-component consistency; returns self for chaining."""
        if self.num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        self.core.validate()
        self.caches.validate()
        self.dram_timing.validate()
        self.dram_topology.validate()
        self.controller.validate()
        if self.prefetch is not None:
            self.prefetch.validate()
        if self.controller.max_pending_per_core < self.core.data_mshrs:
            raise ValueError(
                "priority table must cover at least data_mshrs pending requests"
            )
        return self

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """Copy of this config with a different core count."""
        return replace(self, num_cores=num_cores)

    def summary(self) -> str:
        """Human-readable one-screen rendering (Table 1 analogue)."""
        t = self.dram_timing
        topo = self.dram_topology
        lines = [
            f"cores: {self.num_cores} x {self.core.freq_hz / 1e9:.1f} GHz, "
            f"{self.core.issue_width}-issue, ROB {self.core.rob_size}",
            f"L1D: {self.caches.l1d.size_bytes // 1024} KB "
            f"{self.caches.l1d.assoc}-way, {self.caches.l1d.hit_latency}-cycle hit",
            f"L2 (shared): {self.caches.l2.size_bytes // (1024 * 1024)} MB "
            f"{self.caches.l2.assoc}-way, {self.caches.l2.hit_latency}-cycle hit",
            f"DRAM: {topo.logic_channels} logic channels x "
            f"{topo.banks_per_channel} banks, row {topo.row_bytes} B, "
            f"tRP/tRCD/CL = {t.t_rp}/{t.t_rcd}/{t.t_cl} cycles, "
            f"burst {t.t_burst} cycles",
            f"controller: {self.controller.buffer_entries}-entry buffer, "
            f"overhead {self.controller.overhead} cycles, "
            f"drain {self.controller.write_drain_high}/"
            f"{self.controller.write_drain_low}, "
            f"page policy {self.controller.page_policy}",
        ]
        return "\n".join(lines)
