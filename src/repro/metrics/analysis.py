"""Post-run analysis of a simulated system.

Turns the raw counters of a finished :class:`~repro.sim.system.
MultiCoreSystem` into the summaries an architect actually reads: channel
and bus utilisation, bank-level parallelism, per-core traffic/latency
breakdowns, and a one-screen textual report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.report import bar_chart
from repro.sim.system import MultiCoreSystem
from repro.util.units import gbps

__all__ = ["ChannelUsage", "CoreUsage", "SystemAnalysis", "analyze"]


@dataclass(frozen=True)
class ChannelUsage:
    """Utilisation summary of one logic channel."""

    index: int
    transactions: int
    bus_busy_cycles: int
    utilization: float  # bus-busy fraction of the run
    row_hit_rate: float
    activations: int
    #: transactions per bank, for spotting hotspots
    per_bank: tuple[int, ...]

    @property
    def bank_imbalance(self) -> float:
        """Max/mean transactions per bank (1.0 = perfectly even)."""
        if not self.per_bank or self.transactions == 0:
            return 1.0
        mean = self.transactions / len(self.per_bank)
        return max(self.per_bank) / mean if mean else 1.0


@dataclass(frozen=True)
class CoreUsage:
    """Memory-side summary of one core over its measurement window."""

    core_id: int
    app: str
    ipc: float
    reads: int
    avg_read_latency: float
    bandwidth_gbps: float
    l1_miss_rate: float
    demand_l2_misses: int


@dataclass(frozen=True)
class SystemAnalysis:
    """Everything :func:`analyze` derives from a finished run."""

    end_cycle: int
    total_bandwidth_gbps: float
    channels: tuple[ChannelUsage, ...]
    cores: tuple[CoreUsage, ...]
    drain_entries: int

    def report(self) -> str:
        """Render a one-screen text report."""
        lines = [
            f"run length: {self.end_cycle} cycles "
            f"({self.end_cycle / 3.2e6:.2f} ms at 3.2 GHz)",
            f"aggregate DRAM bandwidth: {self.total_bandwidth_gbps:.2f} GB/s",
            f"write drains entered: {self.drain_entries}",
            "",
            "channels:",
        ]
        for ch in self.channels:
            lines.append(
                f"  ch{ch.index}: {ch.transactions} txns, "
                f"bus util {ch.utilization:.1%}, "
                f"row hits {ch.row_hit_rate:.1%}, "
                f"bank imbalance {ch.bank_imbalance:.2f}x"
            )
        lines.append("")
        lines.append("per-core read latency (cycles):")
        lines.append(
            bar_chart(
                {f"{c.core_id}:{c.app}": c.avg_read_latency for c in self.cores},
                width=30,
                fmt="{:7.0f}",
            )
        )
        lines.append("")
        lines.append("per-core bandwidth (GB/s):")
        lines.append(
            bar_chart(
                {f"{c.core_id}:{c.app}": c.bandwidth_gbps for c in self.cores},
                width=30,
                fmt="{:6.2f}",
            )
        )
        return "\n".join(lines)


def analyze(system: MultiCoreSystem, app_names: list[str] | None = None) -> SystemAnalysis:
    """Summarise a finished :class:`MultiCoreSystem` run."""
    if not system.all_finished:
        raise ValueError("system has not finished; run() it first")
    end = system.end_cycle
    t_burst = system.config.dram_timing.t_burst
    channels = []
    for ch in system.dram.channels:
        busy = ch.transactions * t_burst
        channels.append(
            ChannelUsage(
                index=ch.index,
                transactions=ch.transactions,
                bus_busy_cycles=busy,
                utilization=busy / end if end else 0.0,
                row_hit_rate=(
                    ch.total_row_hits / ch.transactions if ch.transactions else 0.0
                ),
                activations=ch.total_activations,
                per_bank=tuple(b.activations + b.row_hits for b in ch.banks),
            )
        )
    cores = []
    total_bytes = 0
    for i, core in enumerate(system.cores):
        win = system.window(i)
        total_bytes += win.bytes_total
        name = app_names[i] if app_names else f"core{i}"
        cores.append(
            CoreUsage(
                core_id=i,
                app=name,
                ipc=core.ipc(),
                reads=win.read_count,
                avg_read_latency=win.avg_read_latency,
                bandwidth_gbps=gbps(win.bytes_total, win.cycle),
                l1_miss_rate=system.hierarchy.l1_miss_rate(i),
                demand_l2_misses=system.hierarchy.l2_miss_count(i),
            )
        )
    # Aggregate bandwidth over the whole run (all traffic, full duration).
    st = system.controller.stats
    all_bytes = sum(st.bytes_read) + sum(st.bytes_written)
    return SystemAnalysis(
        end_cycle=end,
        total_bandwidth_gbps=gbps(all_bytes, end),
        channels=tuple(channels),
        cores=tuple(cores),
        drain_entries=st.drain_entries,
    )
