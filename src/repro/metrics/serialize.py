"""JSON serialisation of experiment results.

Downstream analysis (plotting notebooks, regression tracking) wants
experiment outputs as plain data, not Python objects.  These helpers map
the result dataclasses (:class:`~repro.sim.runner.RunResult`,
:class:`~repro.experiments.harness.PolicyOutcome`,
:class:`~repro.experiments.figure2.Figure2Row`, sweep results, ...) onto
JSON-able dicts and back-compatible files.  Dataclasses are introspected
recursively, so new result fields serialise without touching this module.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any

__all__ = ["to_jsonable", "save_results", "load_results"]

#: file-format marker so later versions can migrate old result files
FORMAT = "repro-results-v1"


def to_jsonable(obj: Any) -> Any:
    """Convert result objects into JSON-compatible structures.

    Handles dataclasses (recursively), mappings, sequences, and scalars;
    anything else raises ``TypeError`` — silent ``str()`` coercion would
    hide schema mistakes.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                k = json.dumps(to_jsonable(k))  # canonical composite keys
            out[k] = to_jsonable(v)
        return out
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(x) for x in obj]
    raise TypeError(f"cannot serialise {type(obj).__name__} to JSON")


def save_results(
    results: Any,
    path: str | os.PathLike,
    meta: dict | None = None,
) -> None:
    """Write results (any jsonable-izable structure) plus metadata.

    The envelope records the format marker and caller-supplied metadata
    (budget, seeds, git revision, ...) so a result file is
    self-describing.
    """
    envelope = {
        "format": FORMAT,
        "meta": to_jsonable(meta or {}),
        "results": to_jsonable(results),
    }
    with open(path, "w") as f:
        json.dump(envelope, f, indent=2, sort_keys=True)
        f.write("\n")


def load_results(path: str | os.PathLike) -> tuple[Any, dict]:
    """Read a result file; returns ``(results, meta)``.

    Raises ``ValueError`` for files this library did not write.
    """
    with open(path) as f:
        envelope = json.load(f)
    if not isinstance(envelope, dict) or envelope.get("format") != FORMAT:
        raise ValueError(f"{path}: not a {FORMAT} file")
    return envelope["results"], envelope.get("meta", {})
