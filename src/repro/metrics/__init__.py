"""Evaluation metrics.

* :mod:`repro.metrics.speedup` — the SMT-speedup performance metric
  (Snavely et al., used in paper Section 4.1) and the unfairness metric
  (max/min slowdown, Section 5.3);
* :mod:`repro.metrics.memory_efficiency` — profiling of Eq. 1's
  ``ME = IPC_single / BW_single`` with result caching;
* :mod:`repro.metrics.stats` — generic accumulators (mean/max histograms)
  used by ablation experiments;
* :mod:`repro.metrics.tails` — exact integer-cycle tail percentiles
  (p50/p99/p999) and SLO-violation counts for the cloud workload family.
"""

from repro.metrics.memory_efficiency import MeProfiler, memory_efficiency
from repro.metrics.speedup import slowdowns, smt_speedup, unfairness
from repro.metrics.stats import OnlineStat, WindowedCounter
from repro.metrics.tails import (
    PERCENTILES,
    TailStats,
    count_violations,
    nearest_rank,
    percentile,
    tail_stats,
)

__all__ = [
    "MeProfiler",
    "OnlineStat",
    "PERCENTILES",
    "TailStats",
    "WindowedCounter",
    "count_violations",
    "memory_efficiency",
    "nearest_rank",
    "percentile",
    "slowdowns",
    "smt_speedup",
    "tail_stats",
    "unfairness",
]
