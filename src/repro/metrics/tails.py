"""Exact integer-cycle tail-latency statistics.

Datacenter workloads are judged by their tails, not their means: a p99
or p999 read latency is the number an SLO is written against ("Memory
Controller Design Under Cloud Workloads", arXiv:1611.10316).  This
module computes those tails *exactly* — nearest-rank percentiles over
integer cycle counts, no interpolation, no floats — so the numbers are
bit-identical across backends, process counts and platforms, and can be
pinned by golden fingerprints like every other statistic in this repo.

Nearest-rank definition (the classic one): the ``q``-th percentile of
``n`` sorted samples is the value at 1-based rank ``ceil(n * q)``,
clamped to at least 1.  Consequences worth knowing:

* p999 of a stream with n <= 1000 samples is simply the maximum;
* a single-request stream has p50 = p99 = p999 = its only latency;
* ties are handled naturally — the rank indexes the sorted multiset.

SLO accounting is strict-greater: a request *violates* its deadline when
``latency > slo`` (finishing exactly on the deadline meets it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "PERCENTILES",
    "TailStats",
    "count_violations",
    "nearest_rank",
    "percentile",
    "tail_stats",
]

#: the tails the cloud tables report, as exact (numerator, denominator)
#: rational fractions — (50, 100) is the median, (999, 1000) the p999
PERCENTILES: tuple[tuple[int, int], ...] = ((50, 100), (99, 100), (999, 1000))


def nearest_rank(sorted_values: Sequence[int], num: int, den: int) -> int:
    """Nearest-rank percentile ``num/den`` of an ascending-sorted sequence.

    The rank is ``ceil(n * num / den)`` computed in exact integer
    arithmetic (never via floats — ``0.29 * 100`` style rounding bugs are
    the reason this module exists), clamped to at least 1.

    >>> nearest_rank([10, 20, 30, 40], 50, 100)
    20
    >>> nearest_rank([7], 999, 1000)
    7
    """
    n = len(sorted_values)
    if n == 0:
        raise ValueError("percentile of an empty sequence")
    if not 0 < num <= den:
        raise ValueError(f"percentile {num}/{den} outside (0, 1]")
    rank = -(-n * num // den)  # exact ceil division
    if rank < 1:
        rank = 1
    return sorted_values[rank - 1]


def percentile(values: Iterable[int], num: int, den: int) -> int:
    """Nearest-rank percentile of an unsorted iterable (sorts a copy)."""
    return nearest_rank(sorted(values), num, den)


def count_violations(latencies: Iterable[int], slo: int) -> int:
    """Requests whose latency exceeded the SLO deadline (strictly)."""
    if slo < 0:
        raise ValueError("slo must be >= 0")
    return sum(1 for x in latencies if x > slo)


@dataclass(frozen=True)
class TailStats:
    """Exact tail summary of one latency population (integer cycles)."""

    count: int
    total: int  # exact sum — means are derived at render time
    p50: int
    p99: int
    p999: int
    worst: int

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def tail_stats(latencies: Iterable[int]) -> TailStats:
    """Summarise a latency population (raises on empty input — a silent
    zero would read as a real sub-cycle tail)."""
    xs = sorted(latencies)
    if not xs:
        raise ValueError("tail_stats of an empty latency population")
    return TailStats(
        count=len(xs),
        total=sum(xs),
        p50=nearest_rank(xs, 50, 100),
        p99=nearest_rank(xs, 99, 100),
        p999=nearest_rank(xs, 999, 1000),
        worst=xs[-1],
    )
