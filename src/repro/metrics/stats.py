"""Generic statistics accumulators.

Small, dependency-free helpers used by experiments and ablations:
:class:`OnlineStat` is a Welford mean/variance accumulator (numerically
stable, single pass); :class:`WindowedCounter` tracks a counter's delta
over measurement windows (the online-ME sampling primitive);
:class:`ReservoirSampler` keeps a fixed-size uniform sample of an
unbounded observation stream (latency percentiles without storing every
request).
"""

from __future__ import annotations

import math

from repro.util.rng import RngStream

__all__ = ["OnlineStat", "ReservoirSampler", "WindowedCounter"]


class OnlineStat:
    """Single-pass mean / variance / extrema (Welford's algorithm)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation in."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 points."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStat") -> None:
        """Fold another accumulator in (parallel Welford merge)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n, self._mean, self._m2 = other.n, other._mean, other._m2
            self.min, self.max = other.min, other.max
            return
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


class ReservoirSampler:
    """Algorithm-R reservoir sampling with deterministic seeding.

    Keeps a uniform random subset of size ``capacity`` from however many
    observations flow through, so percentile queries over millions of read
    latencies cost O(capacity) memory.

    >>> r = ReservoirSampler(4, seed=1)
    >>> for x in range(100): r.add(float(x))
    >>> len(r.sample) <= 4
    True
    """

    __slots__ = ("capacity", "sample", "seen", "_rng")

    def __init__(self, capacity: int = 2048, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.sample: list[float] = []
        self.seen = 0
        self._rng = RngStream(seed, "reservoir")

    def add(self, x: float) -> None:
        """Fold one observation into the reservoir."""
        self.seen += 1
        if len(self.sample) < self.capacity:
            self.sample.append(x)
            return
        j = self._rng.randint(0, self.seen)
        if j < self.capacity:
            self.sample[j] = x

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0-100) of the stream."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.sample:
            raise ValueError("no observations")
        xs = sorted(self.sample)
        idx = round(p / 100 * (len(xs) - 1))
        return xs[idx]

    def clear(self) -> None:
        self.sample.clear()
        self.seen = 0


class WindowedCounter:
    """Delta tracker over measurement windows.

    >>> w = WindowedCounter()
    >>> w.sample(10)
    10
    >>> w.sample(25)
    15
    """

    __slots__ = ("_last",)

    def __init__(self, initial: int = 0) -> None:
        self._last = initial

    def sample(self, current: int) -> int:
        """Return the delta since the previous sample and advance."""
        if current < self._last:
            raise ValueError(
                f"counter went backwards: {current} < {self._last}"
            )
        delta = current - self._last
        self._last = current
        return delta
