"""Plain-text rendering helpers for experiment results.

The paper's figures are bar charts; these helpers render comparable
ASCII bars so results can be eyeballed in a terminal or pasted into
EXPERIMENTS.md without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar", "bar_chart", "grouped_bar_chart", "histogram"]


def bar(value: float, scale: float, width: int = 40, fill: str = "#") -> str:
    """One bar of ``value`` out of ``scale``, ``width`` chars at full scale."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = int(round(min(max(value / scale, 0.0), 1.0) * width))
    return fill * n


def bar_chart(
    data: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart of label -> value.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4))
    a 2.000 ####
    b 1.000 ##
    """
    if not data:
        return "(no data)"
    top = max(data.values())
    if top <= 0:
        top = 1.0
    label_w = max(len(k) for k in data)
    lines = []
    for k, v in data.items():
        lines.append(
            f"{k:<{label_w}} {fmt.format(v)} {bar(v, top, width)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 30,
    fmt: str = "{:.3f}",
) -> str:
    """Bar chart with an outer grouping (workload -> policy -> value)."""
    if not groups:
        return "(no data)"
    top = max(v for g in groups.values() for v in g.values())
    if top <= 0:
        top = 1.0
    label_w = max(len(k) for g in groups.values() for k in g)
    lines = []
    for gname, series in groups.items():
        lines.append(f"{gname}:")
        for k, v in series.items():
            lines.append(
                f"  {k:<{label_w}} {fmt.format(v)} {bar(v, top, width)}"
            )
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 30,
) -> str:
    """Text histogram of a sample (e.g. read latencies)."""
    if not values:
        return "(no data)"
    if bins < 1:
        raise ValueError("bins must be >= 1")
    lo, hi = min(values), max(values)
    if hi == lo:
        return f"[{lo:.6g}] x{len(values)}"
    span = (hi - lo) / bins
    counts = [0] * bins
    for v in values:
        idx = min(int((v - lo) / span), bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, c in enumerate(counts):
        left = lo + i * span
        lines.append(
            f"[{left:10.6g}, {left + span:10.6g}) {c:>6} {bar(c, peak, width)}"
        )
    return "\n".join(lines)
