"""SMT speedup and unfairness metrics.

The paper compares scheduling schemes with the *SMT speedup* of Snavely et
al. (Section 4.1)::

    speedup = sum_i IPC_multi[i] / IPC_single[i]

which weights every application by its own single-core performance and so
cannot be gamed by starving low-ILP programs.  Fairness (Section 5.3,
after Gabor et al. and Mutlu & Moscibroda) is measured as *unfairness*::

    unfairness = max_i slowdown[i] / min_i slowdown[i]
    slowdown[i] = IPC_single[i] / IPC_multi[i]

1.0 is perfectly fair; larger is worse.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["smt_speedup", "slowdowns", "unfairness"]


def _check(ipc_multi: Sequence[float], ipc_single: Sequence[float]) -> None:
    if len(ipc_multi) != len(ipc_single):
        raise ValueError(
            f"core count mismatch: {len(ipc_multi)} vs {len(ipc_single)}"
        )
    if not ipc_multi:
        raise ValueError("need at least one core")
    if any(x <= 0 for x in ipc_single):
        raise ValueError("single-core IPC must be positive")
    if any(x <= 0 for x in ipc_multi):
        raise ValueError("multi-core IPC must be positive")


def smt_speedup(ipc_multi: Sequence[float], ipc_single: Sequence[float]) -> float:
    """Snavely SMT speedup; an ideal n-core run scores n.

    >>> smt_speedup([1.0, 2.0], [2.0, 4.0])
    1.0
    """
    _check(ipc_multi, ipc_single)
    return sum(m / s for m, s in zip(ipc_multi, ipc_single))


def slowdowns(
    ipc_multi: Sequence[float], ipc_single: Sequence[float]
) -> tuple[float, ...]:
    """Per-core slowdown relative to running alone (>= 1 in practice)."""
    _check(ipc_multi, ipc_single)
    return tuple(s / m for m, s in zip(ipc_multi, ipc_single))


def unfairness(ipc_multi: Sequence[float], ipc_single: Sequence[float]) -> float:
    """Max-over-min slowdown; 1.0 is perfectly fair.

    >>> unfairness([1.0, 1.0], [2.0, 2.0])
    1.0
    """
    s = slowdowns(ipc_multi, ipc_single)
    return max(s) / min(s)
