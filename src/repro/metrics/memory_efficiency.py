"""Memory-efficiency profiling (the paper's Eq. 1).

``ME[i] = IPC_single[i] / BW_single[i]`` with bandwidth in GB/s, measured
by running each application alone on a single-core machine.  The paper
collects this off-line from a 10 M-instruction SimPoint *different* from
the evaluation SimPoints; :class:`MeProfiler` mirrors that by running the
``"profile"`` trace phase (a distinct RNG stream from ``"eval"``) and
caches results per ``(app, seed, budget)`` so a sweep over 36 workloads
profiles each of the 26 applications once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.sim.runner import ME_CAP, CoreResult, run_single_core
from repro.workloads.mixes import Mix
from repro.workloads.spec2000 import AppProfile

__all__ = ["memory_efficiency", "MeProfile", "MeProfiler"]


def memory_efficiency(ipc: float, bw_gbps: float, cap: float = ME_CAP) -> float:
    """Eq. 1, with a cap for (near-)zero-bandwidth applications.

    >>> memory_efficiency(1.0, 0.5)
    2.0
    """
    if ipc < 0 or bw_gbps < 0:
        raise ValueError("ipc and bandwidth must be non-negative")
    if bw_gbps == 0:
        return cap
    return min(ipc / bw_gbps, cap)


@dataclass(frozen=True)
class MeProfile:
    """Profiled single-core behaviour of one application."""

    app: str
    code: str
    ipc: float
    bw_gbps: float
    me: float
    avg_read_latency: float


class MeProfiler:
    """Cached single-core profiler.

    Parameters
    ----------
    inst_budget:
        Instructions per profiling run (the 10 M-instruction SimPoint
        analogue, scaled down — see DESIGN.md §2).
    seed / config:
        Shared by all profiling runs.
    """

    def __init__(
        self,
        inst_budget: int,
        seed: int = 0,
        config: SystemConfig | None = None,
    ) -> None:
        if inst_budget < 1:
            raise ValueError("inst_budget must be >= 1")
        self.inst_budget = inst_budget
        self.seed = seed
        self.config = config or SystemConfig()
        self._cache: dict[str, MeProfile] = {}
        self._single_core_results: dict[str, CoreResult] = {}

    def profile(self, app: AppProfile) -> MeProfile:
        """Profile one application (cached)."""
        hit = self._cache.get(app.code)
        if hit is not None:
            return hit
        res = run_single_core(
            app,
            self.inst_budget,
            seed=self.seed,
            phase="profile",
            config=self.config,
        )
        prof = MeProfile(
            app=app.name,
            code=app.code,
            ipc=res.ipc,
            bw_gbps=res.bw_gbps,
            me=memory_efficiency(res.ipc, res.bw_gbps),
            avg_read_latency=res.avg_read_latency,
        )
        self._cache[app.code] = prof
        return prof

    def me_values(self, mix: Mix) -> tuple[float, ...]:
        """Per-core ME vector for a workload mix (feeds ME / ME-LREQ)."""
        return tuple(self.profile(app).me for app in mix.apps())

    # -- cache preloading (parallel runner / disk cache) ----------------------------

    def has_profile(self, code: str) -> bool:
        return code in self._cache

    def preload_profile(self, profile: MeProfile) -> None:
        """Install an externally computed profile (cache hit / worker
        result); must be bit-identical to what :meth:`profile` would
        compute — the parallel runner guarantees that by keying on every
        run determinant."""
        self._cache.setdefault(profile.code, profile)

    def has_single(self, code: str, phase: str = "eval") -> bool:
        return f"{code}:{phase}" in self._single_core_results

    def preload_single(self, code: str, result: CoreResult,
                       phase: str = "eval") -> None:
        """Install an externally computed single-core evaluation run."""
        self._single_core_results.setdefault(f"{code}:{phase}", result)

    def single_core_ipc(self, app: AppProfile, phase: str = "eval") -> float:
        """Single-core IPC on the *evaluation* slice (SMT-speedup baseline).

        The paper's speedup denominator comes from the same SimPoints the
        multiprogrammed runs use, hence the separate phase and cache.
        """
        key = f"{app.code}:{phase}"
        res = self._single_core_results.get(key)
        if res is None:
            res = run_single_core(
                app,
                self.inst_budget,
                seed=self.seed,
                phase=phase,
                config=self.config,
            )
            self._single_core_results[key] = res
        return res.ipc

    def single_core_result(self, app: AppProfile,
                           phase: str = "eval") -> CoreResult:
        """Full :class:`CoreResult` of the single-core evaluation run
        (computes and caches it on first use)."""
        self.single_core_ipc(app, phase)
        return self._single_core_results[f"{app.code}:{phase}"]

    def single_ipcs(self, mix: Mix, phase: str = "eval") -> tuple[float, ...]:
        """Per-core single-core IPC vector for a mix."""
        return tuple(self.single_core_ipc(app, phase) for app in mix.apps())
