#!/usr/bin/env python3
"""Quickstart: profile a workload, run it under two schedulers, compare.

This walks the paper's whole methodology once, on one 4-core
memory-intensive workload (4MEM-1 = wupwise + swim + mgrid + applu):

1. profile each application's memory efficiency alone (Eq. 1);
2. measure each application's single-core IPC (SMT-speedup baseline);
3. run the multiprogrammed mix under the HF-RF baseline and the paper's
   ME-LREQ policy;
4. report SMT speedup, unfairness and per-core read latencies.

Run:  python examples/quickstart.py [--budget N] [--seed S]
"""

import argparse

from repro import (
    MeProfiler,
    SystemConfig,
    run_multicore,
    smt_speedup,
    unfairness,
    workload_by_name,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="4MEM-1")
    ap.add_argument("--budget", type=int, default=30_000,
                    help="instructions measured per core")
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    cfg = SystemConfig()
    print("== simulated machine (paper Table 1) ==")
    print(cfg.summary())

    mix = workload_by_name(args.workload)
    print(f"\n== workload {mix.name}: {', '.join(a.name for a in mix.apps())} ==")

    # 1-2. profiling (the paper's off-line step)
    profiler = MeProfiler(inst_budget=args.budget // 2, seed=args.seed)
    me = profiler.me_values(mix)
    single = profiler.single_ipcs(mix)
    for app, m, s in zip(mix.apps(), me, single):
        print(f"  {app.name:<9} class={app.klass}  ME={m:8.3f}  IPC_single={s:.2f}")

    # 3. evaluation runs
    print("\n== evaluation ==")
    for policy in ("HF-RF", "ME-LREQ"):
        result = run_multicore(
            mix, policy, inst_budget=args.budget, seed=args.seed, me_values=me
        )
        sp = smt_speedup(result.ipcs(), single)
        uf = unfairness(result.ipcs(), single)
        lats = " ".join(f"{c.avg_read_latency:6.0f}" for c in result.per_core)
        print(
            f"  {policy:<8} SMT speedup={sp:.3f}  unfairness={uf:.2f}  "
            f"avg read latency={result.avg_read_latency():6.0f} cyc  "
            f"per-core=[{lats}]"
        )
    print(
        "\nME-LREQ should match or beat HF-RF on memory-intensive mixes; "
        "the gap grows with the number of cores (paper Figure 2)."
    )


if __name__ == "__main__":
    main()
