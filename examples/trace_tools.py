#!/usr/bin/env python3
"""Record, save and replay instruction traces (trace-driven workflow).

Trace-driven simulators separate *trace generation* from *simulation* so
one expensive trace serves many experiments.  This example:

1. records N memory operations of a synthetic application to a REPROTR1
   binary trace file;
2. replays the file through the full simulated machine twice — under two
   different schedulers — demonstrating identical inputs, differing
   memory-system behaviour;
3. prints a latency histogram for each run.

Run:  python examples/trace_tools.py --app swim --ops 3000
"""

import argparse
import tempfile
from pathlib import Path

from repro import SystemConfig, make_policy
from repro.cpu.trace_io import load_trace, record_trace, save_trace
from repro.metrics.report import histogram
from repro.metrics.stats import ReservoirSampler
from repro.sim.system import MultiCoreSystem
from repro.workloads.spec2000 import app_by_name
from repro.workloads.synthetic import make_trace


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--app", default="swim")
    ap.add_argument("--ops", type=int, default=3_000)
    ap.add_argument("--budget", type=int, default=8_000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--out", help="trace file path (default: temp file)")
    args = ap.parse_args()

    app = app_by_name(args.app)
    source = make_trace(app, args.seed, "eval", core_id=0)
    ops = record_trace(source, args.ops)
    path = Path(args.out) if args.out else Path(tempfile.gettempdir()) / f"{app.name}.trace"
    save_trace(ops, path)
    insts = sum(op.gap + 1 for op in ops)
    print(f"recorded {len(ops)} memory ops ({insts} instructions) -> {path}")

    for policy_name in ("FCFS", "HF-RF"):
        trace = load_trace(path)
        cfg = SystemConfig(num_cores=1)
        # Pin the object backend: this example instruments the controller
        # by wrapping its `_commit` method, and the fast backend fuses the
        # whole scheduling point into one frame that never calls it.
        system = MultiCoreSystem(
            cfg, make_policy(policy_name), [trace],
            target_insts=min(args.budget, insts), seed=args.seed,
            backend="object",
        )
        sampler = ReservoirSampler(512, seed=args.seed)
        orig = system.controller._commit

        def commit(req, ch, now, orig=orig, sampler=sampler):
            orig(req, ch, now)
            if not req.is_write:
                sampler.add(req.done_cycle - req.arrival_cycle)

        system.controller._commit = commit
        system.run()
        core = system.cores[0]
        print(f"\n== {policy_name}: IPC {core.ipc():.3f}, "
              f"{sampler.seen} reads ==")
        if sampler.sample:
            print(histogram(sampler.sample, bins=8, width=30))
            print(f"p50={sampler.percentile(50):.0f}  "
                  f"p90={sampler.percentile(90):.0f}  "
                  f"p99={sampler.percentile(99):.0f} cycles")


if __name__ == "__main__":
    main()
