#!/usr/bin/env python3
"""Compare all five paper policies across a workload group (mini Figure 2).

Runs HF-RF, ME, RR, LREQ and ME-LREQ on every Table 3 mix of the chosen
core count and group, printing SMT speedups and the group-average gain of
each policy over the HF-RF baseline — the numbers Section 5.1 quotes.

Run:  python examples/policy_comparison.py --cores 4 --group MEM
"""

import argparse
import time

from repro.experiments import ExperimentContext, run_figure2
from repro.experiments.figure2 import average_gains, format_figure2


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cores", type=int, default=4, choices=(2, 4, 8))
    ap.add_argument("--group", default="MEM", choices=("MEM", "MIX"))
    ap.add_argument("--budget", type=int, default=30_000)
    ap.add_argument("--seeds", type=int, nargs="+", default=[1])
    args = ap.parse_args()

    ctx = ExperimentContext(
        inst_budget=args.budget,
        seeds=tuple(args.seeds),
        profile_budget=max(args.budget // 2, 5_000),
    )
    t0 = time.time()
    rows = run_figure2(ctx, core_counts=(args.cores,), groups=(args.group,))
    print(format_figure2(rows))
    gains = average_gains(rows)
    best = max(
        (p for (_, _, p) in gains if p != "HF-RF"),
        key=lambda p: gains[(args.cores, args.group, p)],
    )
    print(f"\nbest policy vs HF-RF on {args.cores}-core {args.group}: {best}")
    print(f"({time.time() - t0:.1f}s)")


if __name__ == "__main__":
    main()
