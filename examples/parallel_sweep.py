#!/usr/bin/env python3
"""Fan a policy sweep out over all CPU cores.

Every (workload, policy, seed) cell of a Figure 2-style sweep is an
independent simulation, so a process pool gives near-linear speedup on a
multicore host — the difference between minutes and tens of minutes for
full-figure regenerations.

Run:  python examples/parallel_sweep.py --cores 4 --workers 0
      (--workers 0 = use every host CPU)
"""

import argparse
import os
import time
from collections import defaultdict

from repro.sim.sweep import grid, run_sweep
from repro.workloads.mixes import mixes_for


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cores", type=int, default=4, choices=(2, 4, 8))
    ap.add_argument("--group", default="MEM", choices=("MEM", "MIX"))
    ap.add_argument("--budget", type=int, default=20_000)
    ap.add_argument("--seeds", type=int, nargs="+", default=[1])
    ap.add_argument("--workers", type=int, default=0,
                    help="pool size; 0 = all host CPUs, 1 = serial")
    args = ap.parse_args()

    workloads = [m.name for m in mixes_for(args.cores, args.group)]
    policies = ["HF-RF", "ME", "RR", "LREQ", "ME-LREQ"]
    cells = grid(workloads, policies, args.seeds)
    workers = args.workers or (os.cpu_count() or 1)
    print(f"{len(cells)} cells over {workers} workers "
          f"(budget {args.budget} insts/core)")

    t0 = time.time()
    results = run_sweep(cells, inst_budget=args.budget, workers=workers)
    wall = time.time() - t0

    by_policy = defaultdict(list)
    for r in results:
        by_policy[r.cell.policy].append(r.smt_speedup)
    base = sum(by_policy["HF-RF"]) / len(by_policy["HF-RF"])
    print(f"\n{args.cores}-core {args.group} group averages:")
    for p in policies:
        avg = sum(by_policy[p]) / len(by_policy[p])
        print(f"  {p:<8} speedup {avg:.3f}  ({avg / base - 1:+.1%} vs HF-RF)")
    print(f"\nwall time {wall:.1f}s "
          f"({len(cells) / wall:.2f} simulations/s)")


if __name__ == "__main__":
    main()
