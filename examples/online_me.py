#!/usr/bin/env python3
"""Online memory-efficiency estimation (the paper's future-work section).

The published ME-LREQ uses *off-line* profiled ME values.  Section 3.1
sketches an online alternative: measure each core's IPC and bandwidth with
performance counters, update ME estimates periodically, and rebuild the
priority tables.  This example runs the offline policy, the online variant
(several measurement windows), and plain LREQ side by side.

Run:  python examples/online_me.py --workload 4MEM-5 --window 20000
"""

import argparse

from repro import MeProfiler, run_multicore, smt_speedup, workload_by_name
from repro.core import OnlineMeLreqPolicy


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="4MEM-5")
    ap.add_argument("--budget", type=int, default=40_000)
    ap.add_argument("--window", type=int, default=20_000,
                    help="online measurement window in cycles")
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    mix = workload_by_name(args.workload)
    prof = MeProfiler(inst_budget=args.budget // 2, seed=args.seed)
    me = prof.me_values(mix)
    single = prof.single_ipcs(mix)
    print(f"workload {mix.name}; offline-profiled ME = {['%.3f' % v for v in me]}\n")

    results = {}
    for label, policy in (
        ("LREQ", "LREQ"),
        ("ME-LREQ (offline)", "ME-LREQ"),
        ("ME-LREQ (online)", OnlineMeLreqPolicy(window=args.window)),
    ):
        r = run_multicore(
            mix,
            policy,
            inst_budget=args.budget,
            seed=args.seed,
            me_values=me if policy == "ME-LREQ" else None,
        )
        results[label] = smt_speedup(r.ipcs(), single)
        extra = ""
        if isinstance(policy, OnlineMeLreqPolicy):
            extra = f"  final online ME estimates: {['%.3f' % v for v in policy.me_values]}"
        print(f"{label:<18} SMT speedup = {results[label]:.3f}{extra}")

    off = results["ME-LREQ (offline)"]
    on = results["ME-LREQ (online)"]
    print(
        f"\nonline reaches {on / off:.1%} of the offline policy's speedup "
        f"without any profiling pass."
    )


if __name__ == "__main__":
    main()
