#!/usr/bin/env python3
"""Fairness and starvation under different schedulers (Figures 4 & 5).

Shows, for one 4-core memory-intensive workload, how each policy
distributes read latency across cores and what that does to the
unfairness metric (max/min slowdown):

* HF-RF serves all cores nearly identically;
* a fixed ME priority starves its lowest-priority core (the paper's
  289-vs-1042-cycle example on 4MEM-5);
* ME-LREQ keeps priorities dynamic and avoids starvation.

Run:  python examples/fairness_study.py --workload 4MEM-5
"""

import argparse

from repro import MeProfiler, run_multicore, smt_speedup, unfairness, workload_by_name
from repro.metrics.speedup import slowdowns


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="4MEM-5")
    ap.add_argument("--budget", type=int, default=30_000)
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    mix = workload_by_name(args.workload)
    prof = MeProfiler(inst_budget=args.budget // 2, seed=args.seed)
    me = prof.me_values(mix)
    single = prof.single_ipcs(mix)

    print(f"workload {mix.name}: {', '.join(a.name for a in mix.apps())}")
    print(f"profiled ME: {['%.3f' % v for v in me]}\n")
    header = f"{'policy':<8} {'speedup':>8} {'unfair':>7}  per-core latency (cycles) / slowdown"
    print(header)
    for policy in ("HF-RF", "ME", "RR", "LREQ", "ME-LREQ"):
        r = run_multicore(
            mix, policy, inst_budget=args.budget, seed=args.seed, me_values=me
        )
        sp = smt_speedup(r.ipcs(), single)
        uf = unfairness(r.ipcs(), single)
        slows = slowdowns(r.ipcs(), single)
        cells = "  ".join(
            f"{c.avg_read_latency:5.0f}/{s:4.2f}x"
            for c, s in zip(r.per_core, slows)
        )
        print(f"{policy:<8} {sp:8.3f} {uf:7.2f}  {cells}")
    print(
        "\nWatch the latency spread: ME concentrates service on its "
        "favourite core; ME-LREQ's pending-read term re-balances it."
    )


if __name__ == "__main__":
    main()
