#!/usr/bin/env python3
"""Tour of the repro.telemetry subsystem.

Runs one multiprogrammed workload with a telemetry hub attached, then
walks every way of looking at the captured data:

1. the terminal summary (time-weighted bandwidth, row-hit rate, queue
   depths, per-core stall fractions);
2. raw time series extracted with ``Telemetry.series`` — here a simple
   ASCII sparkline of per-epoch bandwidth and read-queue depth;
3. discrete events on the bus: write-drain windows and scheduler
   decisions;
4. the three exporters — JSONL, CSV and a Chrome trace-event file you
   can drop into https://ui.perfetto.dev.

Run:  python examples/telemetry_tour.py [--budget N] [--out-dir DIR]
"""

import argparse
from pathlib import Path

from repro import MeProfiler, Telemetry, run_multicore, workload_by_name
from repro.telemetry import (
    render_summary,
    write_chrome_trace,
    write_csv,
    write_jsonl,
)

SPARKS = " .:-=+*#%@"


def sparkline(values):
    top = max(values) or 1.0
    return "".join(
        SPARKS[min(int(v / top * (len(SPARKS) - 1)), len(SPARKS) - 1)]
        for v in values
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="4MEM-1")
    ap.add_argument("--policy", default="ME-LREQ")
    ap.add_argument("--budget", type=int, default=20_000)
    ap.add_argument("--sample-every", type=int, default=2000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--out-dir", default=".", help="where to write exports")
    args = ap.parse_args()

    mix = workload_by_name(args.workload)
    me = None
    if args.policy.startswith("ME"):
        me = MeProfiler(
            inst_budget=max(args.budget // 2, 5000), seed=args.seed
        ).me_values(mix)

    # A Telemetry hub accompanies exactly one run.  capture_decisions
    # adds a per-scheduling-decision event stream (rich Chrome traces);
    # leave it off when you only want the periodic series.
    tm = Telemetry(sample_every=args.sample_every, capture_decisions=True)
    result = run_multicore(
        mix, args.policy, inst_budget=args.budget, seed=args.seed,
        me_values=me, telemetry=tm,
    )

    print(f"== {mix.name} under {result.policy_name}: summary ==")
    print(render_summary(tm))

    # -- 2. time series ---------------------------------------------------
    bw = tm.series(lambda s: sum(c.bw_gbps for c in s.channels))
    rq = tm.series(lambda s: s.read_queue)
    print("\n== per-epoch series ==")
    print(f"  aggregate bandwidth  |{sparkline([v for _, v in bw])}|"
          f"  peak {max(v for _, v in bw):.2f} GB/s")
    print(f"  read queue depth     |{sparkline([v for _, v in rq])}|"
          f"  peak {max(v for _, v in rq):.1f}")

    # -- 3. discrete events -----------------------------------------------
    spans = tm.bus.spans("write_drain", end_cycle=tm.end_cycle)
    drained = sum(end - start for start, end, _ in spans)
    print("\n== bus events ==")
    print(f"  write-drain windows: {len(spans)} "
          f"({drained / max(tm.end_cycle, 1):.1%} of the run)")
    decisions = tm.bus.named("decision")
    if decisions:
        hits = sum(1 for d in decisions if d.args["hit"])
        print(f"  scheduling decisions: {len(decisions)} "
              f"({hits / len(decisions):.1%} row hits)")

    # -- 4. exporters -----------------------------------------------------
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace = out / "tour.trace.json"
    jsonl = out / "tour.telemetry.jsonl"
    csvf = out / "tour.telemetry.csv"
    print("\n== exports ==")
    print(f"  {trace}  ({write_chrome_trace(tm, trace)} events; "
          "load in Perfetto)")
    print(f"  {jsonl}  ({write_jsonl(tm, jsonl)} lines)")
    print(f"  {csvf}  ({write_csv(tm, csvf)} rows)")


if __name__ == "__main__":
    main()
