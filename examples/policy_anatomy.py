#!/usr/bin/env python3
"""Dissect *how* each scheduler makes its decisions.

Runs one memory-intensive workload under several policies with a
decision log attached, then reports for each: how often it departed from
arrival order, its row-hit share, how long it keeps serving one core
(the 'spatial locality' run length of the paper's Section 1), the
per-core service shares — plus the resulting system analysis (bus
utilisation, per-core latency).

Run:  python examples/policy_anatomy.py --workload 4MEM-1
"""

import argparse

from repro import MeProfiler, SystemConfig, make_policy
from repro.controller.decision_log import DecisionLog
from repro.metrics.analysis import analyze
from repro.sim.system import MultiCoreSystem
from repro.workloads.mixes import workload_by_name
from repro.workloads.synthetic import make_trace


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workload", default="4MEM-1")
    ap.add_argument("--budget", type=int, default=20_000)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--policies", nargs="+",
                    default=["FCFS", "HF-RF", "RR", "LREQ", "ME-LREQ"])
    args = ap.parse_args()

    mix = workload_by_name(args.workload)
    names = [a.name for a in mix.apps()]
    me = MeProfiler(inst_budget=args.budget // 2, seed=args.seed).me_values(mix)

    print(f"workload {mix.name}: {', '.join(names)}\n")
    header = (f"{'policy':<8} {'reorder':>8} {'row-hit':>8} "
              f"{'core-run':>9}  service share")
    print(header)
    details = {}
    for pol_name in args.policies:
        policy = (
            make_policy(pol_name, me_values=me)
            if pol_name in ("ME", "ME-LREQ")
            else make_policy(pol_name)
        )
        cfg = SystemConfig(num_cores=mix.num_cores)
        traces = [
            make_trace(a, args.seed, "eval", i) for i, a in enumerate(mix.apps())
        ]
        system = MultiCoreSystem(
            cfg, policy, traces, args.budget, warmup_insts=10_000, seed=args.seed
        )
        log = DecisionLog.attach(system.controller)
        system.run()
        share = " ".join(
            f"{s:.0%}" for s in log.service_share(mix.num_cores)
        )
        print(f"{pol_name:<8} {log.reorder_rate():>8.1%} "
              f"{log.hit_rate():>8.1%} {log.mean_run_length():>9.2f}  {share}")
        details[pol_name] = analyze(system, names)

    print("\nPer-core read latency under each policy (cycles):")
    for pol_name, a in details.items():
        lats = " ".join(f"{c.avg_read_latency:6.0f}" for c in a.cores)
        print(f"  {pol_name:<8} {lats}   "
              f"(bus util {sum(ch.utilization for ch in a.channels) / 2:.0%})")


if __name__ == "__main__":
    main()
